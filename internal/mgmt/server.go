package mgmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sdme/internal/metrics"
	"sdme/internal/topo"
)

// Transport-level push failures. All are retryable (the condition can
// heal: an agent reconnects, a wedged device recovers); a *RefusedError
// is not — the agent deterministically rejected the configuration.
var (
	// ErrNotConnected: the node has no live agent connection right now.
	ErrNotConnected = errors.New("no agent connection")
	// ErrConnClosed: the connection died while the push was in flight.
	ErrConnClosed = errors.New("connection closed")
	// ErrAckTimeout: the agent did not ack within the per-attempt budget.
	ErrAckTimeout = errors.New("ack timeout")
	// ErrServerClosed: the server is shutting down.
	ErrServerClosed = errors.New("server closed")
)

// ErrNotLeader: this controller replica was deposed (or never led);
// pushing plans from it would race the current leader's, so the server
// refuses locally before anything reaches the wire. Not retryable
// against this replica — the caller re-homes to the leader.
var ErrNotLeader = errors.New("not the leader")

// RefusedError is an agent's deterministic rejection of a configuration;
// retrying the same plan cannot succeed.
type RefusedError struct {
	Node   topo.NodeID
	Reason string
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("mgmt: node %v refused config: %s", e.Node, e.Reason)
}

// RetryPolicy bounds a push: Attempts tries total, each waiting
// PerAttempt for the ack, sleeping Backoff<<(k-1) before retry k.
// The zero value means one attempt with a 2s ack budget.
type RetryPolicy struct {
	Attempts   int
	PerAttempt time.Duration
	Backoff    time.Duration
}

func (p RetryPolicy) fill() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.PerAttempt <= 0 {
		p.PerAttempt = 2 * time.Second
	}
	if p.Backoff <= 0 {
		p.Backoff = 25 * time.Millisecond
	}
	return p
}

// DefaultRepushPolicy governs the automatic catch-up push to a
// reconnecting agent that reports a stale epoch.
var DefaultRepushPolicy = RetryPolicy{Attempts: 3, PerAttempt: 2 * time.Second, Backoff: 50 * time.Millisecond}

// Server is the controller-side endpoint of the management channel. It
// accepts agent connections, tracks which node each serves, pushes
// configuration, and surfaces measurement reports.
//
// Dependability machinery: every push stamps a monotonic epoch and is
// recorded as the node's latest intended plan — even when the node is
// currently disconnected. When an agent (re)connects and its HELLO
// reports an older epoch, the server re-pushes the latest plan
// automatically, so a node that missed reconfigurations while down
// converges without operator involvement. Acks carry the epoch back;
// Converged answers whether every node runs the latest plan.
type Server struct {
	l net.Listener

	mu      sync.Mutex
	conns   map[topo.NodeID]*serverConn
	nextSeq uint64
	epoch   uint64
	latest  map[topo.NodeID]ConfigDTO
	acked   map[topo.NodeID]uint64
	onMeas  func(topo.NodeID, []MeasureRow)
	closed  bool
	repush  RetryPolicy

	// Replicated-controller state (replica.go / DESIGN §11). term is
	// stamped on every outgoing plan so agents can fence a deposed
	// leader; notLeader gates pushes locally and bounces connecting
	// agents to leaderAddr with a NotLeader frame. A standalone server
	// (the single-controller substrates) never sets either: term 0 is
	// omitted on the wire and the gate stays open.
	term       uint64
	notLeader  bool
	leaderAddr string

	// sm is the optional metrics attachment (observe.go).
	sm smPtr

	stop chan struct{}
	wg   sync.WaitGroup
}

type serverConn struct {
	node topo.NodeID
	conn net.Conn
	// closed is closed when the read loop exits, so pushes waiting on an
	// ack fail the moment the connection dies instead of burning their
	// full timeout.
	closed chan struct{}

	writeMu sync.Mutex
	ackMu   sync.Mutex
	pending map[uint64]chan Ack // seq -> ack
}

// NewServer starts a management server listening on addr ("127.0.0.1:0"
// for tests/demos).
func NewServer(addr string, onMeasure func(topo.NodeID, []MeasureRow)) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mgmt: listen: %w", err)
	}
	s := &Server{
		l:      l,
		conns:  make(map[topo.NodeID]*serverConn),
		latest: make(map[topo.NodeID]ConfigDTO),
		acked:  make(map[topo.NodeID]uint64),
		onMeas: onMeasure,
		repush: DefaultRepushPolicy,
		stop:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address for agents to dial.
func (s *Server) Addr() string { return s.l.Addr().String() }

// SetRepushPolicy overrides the reconnect catch-up policy (tests and
// experiments shorten it).
func (s *Server) SetRepushPolicy(p RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.repush = p.fill()
}

// SetLeader marks this replica's server as the leader at the given
// term: the push gate opens and every subsequent plan is stamped with
// the term (agents refuse anything older — split-brain fencing).
func (s *Server) SetLeader(term uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if term > s.term {
		s.term = term
	}
	s.notLeader = false
	s.leaderAddr = ""
}

// SetNotLeader closes the push gate — this replica was deposed or has
// not (yet) won a term. Pushes fail locally with ErrNotLeader and
// agents that connect are bounced to leaderAddr ("" = unknown; the
// agent rotates through its configured replicas instead).
func (s *Server) SetNotLeader(leaderAddr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notLeader = true
	s.leaderAddr = leaderAddr
}

// Term returns the leadership term the server stamps on pushes.
func (s *Server) Term() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term
}

// DropAllConns severs every live agent connection (returning how many).
// A deposed leader calls this so its agents re-home to the new leader
// instead of idling on a replica that can no longer push plans.
func (s *Server) DropAllConns() int {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	return len(conns)
}

// Close shuts the server and all connections down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.stop)
	_ = s.l.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	s.wg.Wait()
}

// Connected returns the nodes with live agent connections, in ID order.
func (s *Server) Connected() []topo.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]topo.NodeID, 0, len(s.conns))
	for id := range s.conns {
		out = append(out, id)
	}
	return topo.SortedIDs(out)
}

// WaitConnected blocks until all the given nodes have connected or the
// timeout passes; it reports success.
func (s *Server) WaitConnected(timeout time.Duration, nodes ...topo.NodeID) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		have := make(map[topo.NodeID]bool)
		for _, id := range s.Connected() {
			have[id] = true
		}
		all := true
		for _, id := range nodes {
			if !have[id] {
				all = false
				break
			}
		}
		if all {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// DropConn severs a node's management connection mid-stream (the
// fault-injection hook for the control channel); it reports whether a
// connection existed. A self-healing agent will reconnect on its own.
func (s *Server) DropConn(node topo.NodeID) bool {
	s.mu.Lock()
	c := s.conns[node]
	s.mu.Unlock()
	if c == nil {
		return false
	}
	_ = c.conn.Close()
	return true
}

// Epoch returns the latest epoch the server has assigned.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// ResumeEpoch fast-forwards the epoch counter to at least e — the
// crash-recovery path: a controller restored from its journal resumes
// numbering above every epoch it may have pushed before dying, so its
// first post-restart plan is a fresh epoch the idempotent agents will
// apply rather than discard as stale.
func (s *Server) ResumeEpoch(e uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e > s.epoch {
		s.epoch = e
	}
}

// AckedEpoch returns the highest epoch a node has acknowledged.
func (s *Server) AckedEpoch(node topo.NodeID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked[node]
}

// Converged reports whether every given node has acked the latest plan
// recorded for it (nodes never pushed to are trivially converged).
func (s *Server) Converged(nodes ...topo.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range nodes {
		latest, ok := s.latest[id]
		if !ok {
			continue
		}
		if s.acked[id] < latest.Epoch {
			return false
		}
	}
	return true
}

// Push sends a configuration to a node's agent and waits for its ack —
// a single attempt; see PushRetry for the self-healing form. The plan is
// recorded as the node's latest either way, so a failed push still
// reaches the node when its agent reconnects.
func (s *Server) Push(node topo.NodeID, dto ConfigDTO, timeout time.Duration) error {
	return s.PushRetry(node, dto, RetryPolicy{Attempts: 1, PerAttempt: timeout})
}

// PushRetry sends a configuration with bounded retries. The epoch is
// assigned once (if the DTO carries none) and survives retries; each
// attempt gets a fresh sequence number and its own timeout, and fails
// fast if the connection dies under it. Transport errors are retried;
// an agent's refusal returns immediately as a *RefusedError.
func (s *Server) PushRetry(node topo.NodeID, dto ConfigDTO, pol RetryPolicy) error {
	pol = pol.fill()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("mgmt: push to %v: %w", node, ErrServerClosed)
	}
	if s.notLeader {
		// Deposed-leader self-gate: the stale plan dies here, before it
		// could race the current leader's pushes at any agent.
		s.mu.Unlock()
		return fmt.Errorf("mgmt: push to %v: %w", node, ErrNotLeader)
	}
	if dto.Term == 0 {
		dto.Term = s.term
	}
	if dto.Epoch == 0 {
		s.epoch++
		dto.Epoch = s.epoch
	} else if dto.Epoch > s.epoch {
		s.epoch = dto.Epoch
	}
	s.storeLatestLocked(node, dto)
	s.mu.Unlock()
	s.smInc(func(m *serverMetrics) *metrics.Counter { return m.pushes })
	s.observePushBytes(TypeConfig, dto, false)
	return s.callRetry(node, TypeConfig, func(seq uint64) interface{} {
		dto.Seq = seq
		return dto
	}, pol, dto.Epoch)
}

// callRetry is the bounded-retry engine shared by config pushes and the
// two-phase rollout messages: each attempt gets a fresh seq and its own
// ack budget; transport errors retry with exponential backoff, an agent's
// refusal returns immediately. recordEpoch, when non-zero, advances the
// node's acked-epoch record on success (zero for prepare: a staged plan
// is not a converged one).
func (s *Server) callRetry(node topo.NodeID, typ string, mk func(seq uint64) interface{}, pol RetryPolicy, recordEpoch uint64) error {
	pol = pol.fill()
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			s.smInc(func(m *serverMetrics) *metrics.Counter { return m.retries })
			select {
			case <-time.After(pol.Backoff << (attempt - 1)):
			case <-s.stop:
				return fmt.Errorf("mgmt: push to %v: %w", node, ErrServerClosed)
			}
		}
		s.smInc(func(m *serverMetrics) *metrics.Counter { return m.attempts })
		lastErr = s.callOnce(node, typ, mk, pol.PerAttempt, recordEpoch)
		if lastErr == nil {
			return nil
		}
		var refused *RefusedError
		if errors.As(lastErr, &refused) {
			s.smInc(func(m *serverMetrics) *metrics.Counter { return m.refused })
			return lastErr
		}
	}
	s.smInc(func(m *serverMetrics) *metrics.Counter { return m.failures })
	return lastErr
}

// storeLatestLocked records dto as the node's latest intended plan. A
// weights-only push merges into the stored full config (re-pushing it
// later must carry the current weights, not the stale ones).
func (s *Server) storeLatestLocked(node topo.NodeID, dto ConfigDTO) {
	dto.Seq = 0
	if dto.WeightsOnly {
		if full, ok := s.latest[node]; ok && !full.WeightsOnly {
			full.Weights = dto.Weights
			full.Epoch = dto.Epoch
			full.Term = dto.Term
			s.latest[node] = full
			return
		}
	}
	s.latest[node] = dto
}

// callOnce is one wire attempt: assign a seq, send, wait for the ack,
// the connection's death, or the timeout — whichever first. mk builds
// the payload around the assigned seq.
func (s *Server) callOnce(node topo.NodeID, typ string, mk func(seq uint64) interface{}, timeout time.Duration, recordEpoch uint64) error {
	s.mu.Lock()
	c := s.conns[node]
	if c == nil {
		// No connection: return before consuming a sequence number or
		// registering pending state.
		s.mu.Unlock()
		return fmt.Errorf("mgmt: push to %v: %w", node, ErrNotConnected)
	}
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()

	ackCh := make(chan Ack, 1)
	c.ackMu.Lock()
	c.pending[seq] = ackCh
	c.ackMu.Unlock()
	defer func() {
		c.ackMu.Lock()
		delete(c.pending, seq)
		c.ackMu.Unlock()
	}()

	c.writeMu.Lock()
	// writeMu serializes concurrent pushers' frames on this conn; a hung
	// peer is bounded by the ack timeout whose expiry closes the conn.
	//vet:ignore lockedblocking -- writeMu serializes frames on this conn by design
	err := writeMsg(c.conn, typ, mk(seq))
	c.writeMu.Unlock()
	if err != nil {
		return fmt.Errorf("mgmt: push to %v: %w (%v)", node, ErrConnClosed, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case ack := <-ackCh:
		if ack.Error != "" {
			return &RefusedError{Node: node, Reason: ack.Error}
		}
		if recordEpoch != 0 {
			s.recordAck(node, recordEpoch)
		}
		return nil
	case <-c.closed:
		return fmt.Errorf("mgmt: push to %v: %w", node, ErrConnClosed)
	case <-timer.C:
		return fmt.Errorf("mgmt: push to %v: %w", node, ErrAckTimeout)
	case <-s.stop:
		return fmt.Errorf("mgmt: push to %v: %w", node, ErrServerClosed)
	}
}

// recordAck advances a node's acked-epoch high-water mark; stale acks
// (an older epoch landing late) never regress it.
func (s *Server) recordAck(node topo.NodeID, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.acked[node] {
		s.acked[node] = epoch
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	env, err := readMsg(conn)
	if err != nil || env.T != TypeHello {
		_ = conn.Close()
		return
	}
	var hello Hello
	if err := json.Unmarshal(env.Data, &hello); err != nil {
		_ = conn.Close()
		return
	}
	// Trust boundary: an unvalidated hello must not register a
	// connection (a negative node id would alias the map key space).
	if err := hello.Validate(); err != nil {
		_ = conn.Close()
		return
	}
	c := &serverConn{
		node:    topo.NodeID(hello.NodeID),
		conn:    conn,
		closed:  make(chan struct{}),
		pending: make(map[uint64]chan Ack),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	if s.notLeader {
		// Bounce the agent to the leader instead of registering it: a
		// standby cannot push plans, so an agent parked here would never
		// converge. The redirect carries the leader's address when known.
		nl := NotLeader{LeaderAddr: s.leaderAddr, Term: s.term}
		s.mu.Unlock()
		_ = writeMsg(conn, TypeNotLeader, nl)
		_ = conn.Close()
		return
	}
	s.conns[c.node] = c
	latest, haveLatest := s.latest[c.node]
	repush := s.repush
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.conns[c.node] == c {
			delete(s.conns, c.node)
		}
		s.mu.Unlock()
		close(c.closed)
		_ = conn.Close()
	}()

	// Confirm the registration before serving: the agent completes its
	// handshake only on this ack, so once a caller observes the agent as
	// connected, pushes are guaranteed to route to this connection and
	// not to a predecessor that is still draining its EOF.
	c.writeMu.Lock()
	// Same frame-serialization mutex as pushOnce; the handshake ack is
	// the first frame out, nothing else holds writeMu yet.
	//vet:ignore lockedblocking -- writeMu serializes frames on this conn by design
	ackErr := writeMsg(conn, TypeHelloAck, Ack{})
	c.writeMu.Unlock()
	if ackErr != nil {
		return
	}
	s.smInc(func(m *serverMetrics) *metrics.Counter { return m.connects })

	// Reconnect catch-up: if the agent's last applied epoch is behind the
	// latest plan recorded for it, re-push that plan (same epoch, fresh
	// seq). An agent already at the latest epoch gets nothing — the push
	// is idempotent, not periodic.
	if haveLatest && latest.Epoch > hello.Epoch {
		s.smInc(func(m *serverMetrics) *metrics.Counter { return m.repush })
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.PushRetry(c.node, latest, repush)
		}()
	}

	for {
		env, err := readMsg(conn)
		if err != nil {
			return
		}
		switch env.T {
		case TypeAck:
			var ack Ack
			if json.Unmarshal(env.Data, &ack) != nil {
				continue
			}
			c.ackMu.Lock()
			ch := c.pending[ack.Seq]
			c.ackMu.Unlock()
			if ch != nil {
				select {
				case ch <- ack:
				default: // duplicate ack for a seq already answered
				}
			}
			// Acks for unknown seqs are stale (a prior attempt timed out
			// or its pusher gave up) and are dropped here; the epoch
			// record still advances so convergence tracking survives an
			// ack that outlives its waiter. Prepare acks are excluded: a
			// staged plan is not an applied one.
			if ch == nil && ack.Error == "" && ack.Epoch != 0 && !ack.Prepared {
				s.recordAck(c.node, ack.Epoch)
			}
		case TypeMeasure:
			var m Measure
			if json.Unmarshal(env.Data, &m) != nil {
				continue
			}
			// Trust boundary: a malformed report (negative counts) must
			// not reach the solver's measurement matrix.
			if m.Validate() != nil {
				continue
			}
			s.smInc(func(mm *serverMetrics) *metrics.Counter { return mm.reports })
			if s.onMeas != nil {
				s.onMeas(topo.NodeID(m.NodeID), m.Rows)
			}
		}
	}
}
