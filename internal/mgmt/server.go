package mgmt

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"sdme/internal/topo"
)

// Server is the controller-side endpoint of the management channel. It
// accepts agent connections, tracks which node each serves, pushes
// configuration, and surfaces measurement reports.
type Server struct {
	l net.Listener

	mu      sync.Mutex
	conns   map[topo.NodeID]*serverConn
	nextSeq uint64
	onMeas  func(topo.NodeID, []MeasureRow)
	closed  bool

	wg sync.WaitGroup
}

type serverConn struct {
	node topo.NodeID
	conn net.Conn

	writeMu sync.Mutex
	ackMu   sync.Mutex
	pending map[uint64]chan string // seq -> error string ("" = ok)
}

// NewServer starts a management server listening on addr ("127.0.0.1:0"
// for tests/demos).
func NewServer(addr string, onMeasure func(topo.NodeID, []MeasureRow)) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mgmt: listen: %w", err)
	}
	s := &Server{
		l:      l,
		conns:  make(map[topo.NodeID]*serverConn),
		onMeas: onMeasure,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address for agents to dial.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the server and all connections down.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.l.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	s.wg.Wait()
}

// Connected returns the nodes with live agent connections, in ID order.
func (s *Server) Connected() []topo.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]topo.NodeID, 0, len(s.conns))
	for id := range s.conns {
		out = append(out, id)
	}
	return topo.SortedIDs(out)
}

// WaitConnected blocks until all the given nodes have connected or the
// timeout passes; it reports success.
func (s *Server) WaitConnected(timeout time.Duration, nodes ...topo.NodeID) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		have := make(map[topo.NodeID]bool)
		for _, id := range s.Connected() {
			have[id] = true
		}
		all := true
		for _, id := range nodes {
			if !have[id] {
				all = false
				break
			}
		}
		if all {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// Push sends a configuration to a node's agent and waits for its ack.
// The DTO's Seq is assigned here.
func (s *Server) Push(node topo.NodeID, dto ConfigDTO, timeout time.Duration) error {
	s.mu.Lock()
	c := s.conns[node]
	s.nextSeq++
	dto.Seq = s.nextSeq
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("mgmt: node %v has no agent connection", node)
	}

	ackCh := make(chan string, 1)
	c.ackMu.Lock()
	c.pending[dto.Seq] = ackCh
	c.ackMu.Unlock()
	defer func() {
		c.ackMu.Lock()
		delete(c.pending, dto.Seq)
		c.ackMu.Unlock()
	}()

	c.writeMu.Lock()
	err := writeMsg(c.conn, TypeConfig, dto)
	c.writeMu.Unlock()
	if err != nil {
		return fmt.Errorf("mgmt: push to %v: %w", node, err)
	}
	select {
	case e := <-ackCh:
		if e != "" {
			return fmt.Errorf("mgmt: node %v refused config: %s", node, e)
		}
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("mgmt: node %v ack timeout", node)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	env, err := readMsg(conn)
	if err != nil || env.T != TypeHello {
		_ = conn.Close()
		return
	}
	var hello Hello
	if err := json.Unmarshal(env.Data, &hello); err != nil {
		_ = conn.Close()
		return
	}
	c := &serverConn{
		node:    topo.NodeID(hello.NodeID),
		conn:    conn,
		pending: make(map[uint64]chan string),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[c.node] = c
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.conns[c.node] == c {
			delete(s.conns, c.node)
		}
		s.mu.Unlock()
		_ = conn.Close()
	}()

	for {
		env, err := readMsg(conn)
		if err != nil {
			return
		}
		switch env.T {
		case TypeAck:
			var ack Ack
			if json.Unmarshal(env.Data, &ack) != nil {
				continue
			}
			c.ackMu.Lock()
			ch := c.pending[ack.Seq]
			c.ackMu.Unlock()
			if ch != nil {
				ch <- ack.Error
			}
		case TypeMeasure:
			var m Measure
			if json.Unmarshal(env.Data, &m) != nil {
				continue
			}
			if s.onMeas != nil {
				s.onMeas(topo.NodeID(m.NodeID), m.Rows)
			}
		}
	}
}
