package mgmt_test

import (
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/live"
	"sdme/internal/mgmt"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

func TestConfigDTORoundTrip(t *testing.T) {
	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.Src = netaddr.MustParsePrefix("10.1.0.0/16")
	d.DstPort = netaddr.SinglePort(80)
	p := tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	cfg := enforce.Config{
		Policies: []*policy.Policy{p},
		Candidates: map[policy.FuncType][]topo.NodeID{
			policy.FuncFW:  {11, 12},
			policy.FuncIDS: {13},
		},
		Weights: map[enforce.WeightKey][]float64{
			{PolicyID: p.ID, Func: policy.FuncFW}: {0.7, 0.3},
		},
		Strategy:       enforce.LoadBalanced,
		HashSeed:       999,
		LabelSwitching: true,
		FlowTTL:        12345,
		LabelTTL:       67890,
		UseTrie:        true,
	}
	back, err := mgmt.ConfigFromDTO(mgmt.ConfigToDTO(7, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if back.Strategy != cfg.Strategy || back.HashSeed != cfg.HashSeed ||
		back.LabelSwitching != cfg.LabelSwitching ||
		back.FlowTTL != cfg.FlowTTL || back.LabelTTL != cfg.LabelTTL ||
		back.UseTrie != cfg.UseTrie {
		t.Errorf("scalar fields lost: %+v", back)
	}
	if len(back.Policies) != 1 {
		t.Fatalf("policies = %d", len(back.Policies))
	}
	bp := back.Policies[0]
	if bp.ID != p.ID || !bp.Actions.Equal(p.Actions) || bp.Desc != p.Desc {
		t.Errorf("policy round trip: %+v vs %+v", bp, p)
	}
	if len(back.Candidates[policy.FuncFW]) != 2 || back.Candidates[policy.FuncFW][0] != 11 {
		t.Errorf("candidates: %v", back.Candidates)
	}
	w := back.Weights[enforce.WeightKey{PolicyID: p.ID, Func: policy.FuncFW}]
	if len(w) != 2 || w[0] != 0.7 {
		t.Errorf("weights: %v", w)
	}
}

// mgmtBed: a live runtime whose devices are configured ONLY via the
// management channel.
type mgmtBed struct {
	g       *topo.Graph
	dep     *enforce.Deployment
	ap      *route.AllPairs
	tbl     *policy.Table
	ctl     *controller.Controller
	nodes   map[topo.NodeID]*enforce.Node
	rt      *live.Runtime
	devices map[topo.NodeID]*live.Device
	sink    *live.Sink
	server  *mgmt.Server
	agents  map[topo.NodeID]*mgmt.Agent

	measMu sync.Mutex
	meas   controller.Measurements
}

func newMgmtBed(t *testing.T, reportEvery time.Duration) *mgmtBed {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 2, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[2], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 1},
	})
	// Build nodes but install only empty configs: the management channel
	// must deliver the real configuration.
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}

	b := &mgmtBed{
		g: g, dep: dep, ap: ap, tbl: tbl, ctl: ctl, nodes: nodes,
		rt: live.NewRuntime(), devices: make(map[topo.NodeID]*live.Device),
		agents: make(map[topo.NodeID]*mgmt.Agent),
		meas:   make(controller.Measurements),
	}
	t.Cleanup(func() {
		for _, a := range b.agents {
			a.Close()
		}
		if b.server != nil {
			b.server.Close()
		}
		b.rt.Close()
	})

	server, err := mgmt.NewServer("127.0.0.1:0", func(_ topo.NodeID, rows []mgmt.MeasureRow) {
		b.measMu.Lock()
		defer b.measMu.Unlock()
		for _, r := range rows {
			b.meas[enforce.MeasKey{PolicyID: r.PolicyID, SrcSubnet: r.SrcSubnet, DstSubnet: r.DstSubnet}] += r.Packets
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b.server = server

	var ids []topo.NodeID
	for id, n := range nodes {
		dev, err := b.rt.AddDevice(n)
		if err != nil {
			t.Fatal(err)
		}
		b.devices[id] = dev
		agent, err := mgmt.NewAgent(dev, server.Addr(), reportEvery)
		if err != nil {
			t.Fatal(err)
		}
		b.agents[id] = agent
		ids = append(ids, id)
	}
	if !server.WaitConnected(3*time.Second, ids...) {
		t.Fatalf("agents did not connect: %v of %v", server.Connected(), ids)
	}
	sink, err := b.rt.AddSink(topo.HostAddr(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	b.sink = sink
	return b
}

// pushAll ships every node's controller-computed config over the wire.
func (b *mgmtBed) pushAll(t *testing.T) {
	t.Helper()
	for id, n := range b.nodes {
		dto := mgmt.ConfigToDTO(0, n.Config())
		if err := b.server.Push(id, dto, 3*time.Second); err != nil {
			t.Fatalf("push to %v: %v", id, err)
		}
	}
}

func TestConfigPushAndEnforcementOverWire(t *testing.T) {
	b := newMgmtBed(t, 0)
	b.pushAll(t)

	proxyID, _ := b.dep.ProxyFor(1)
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 1),
		SrcPort: 47000, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
	const n = 4
	for i := 0; i < n; i++ {
		if err := b.rt.Inject(b.dep.AddrOf(proxyID), packet.New(ft, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.sink.Received() >= n }) {
		t.Fatalf("sink received %d of %d", b.sink.Received(), n)
	}
	// The chain ran on configs that traveled the management channel.
	ids := b.dep.Providers(policy.FuncIDS)[0]
	if got := b.devices[ids].Counters().Load; got != n {
		t.Errorf("IDS load = %d, want %d", got, n)
	}
}

func TestMeasurementReportingAndRebalanceOverWire(t *testing.T) {
	b := newMgmtBed(t, 30*time.Millisecond)
	b.pushAll(t)

	proxyID, _ := b.dep.ProxyFor(1)
	for i := 0; i < 10; i++ {
		ft := netaddr.FiveTuple{
			Src: topo.HostAddr(1, 1+i), Dst: topo.HostAddr(2, 1),
			SrcPort: uint16(48000 + i), DstPort: 80, Proto: netaddr.ProtoTCP,
		}
		if err := b.rt.Inject(b.dep.AddrOf(proxyID), packet.New(ft, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.sink.Received() >= 10 }) {
		t.Fatalf("sink received %d", b.sink.Received())
	}
	// Reports arrive asynchronously; wait for all 10 packets' counts.
	if !live.WaitUntil(3*time.Second, func() bool {
		b.measMu.Lock()
		defer b.measMu.Unlock()
		var total int64
		for _, v := range b.meas {
			total += v
		}
		return total >= 10
	}) {
		t.Fatal("measurements never arrived at the controller")
	}

	// Close the §III-C loop: solve LB from the REPORTED measurements and
	// push weights-only updates back over the wire.
	b.measMu.Lock()
	meas := make(controller.Measurements, len(b.meas))
	for k, v := range b.meas {
		meas[k] = v
	}
	b.measMu.Unlock()
	sol, err := b.ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	for id := range b.nodes {
		w := sol.Weights[id]
		if err := b.server.Push(id, mgmt.WeightsToDTO(0, w), 3*time.Second); err != nil {
			t.Fatalf("weights push to %v: %v", id, err)
		}
	}
	// Weight-only pushes preserve soft state: the proxy's flow table
	// still has the 10 flows.
	proxyDev := b.devices[proxyID]
	var flows int
	proxyDev.Do(func(n *enforce.Node) { flows = n.FlowTable().Len() })
	if flows != 10 {
		t.Errorf("flow table lost state on weights push: %d entries", flows)
	}
}

func TestPushToUnknownNodeFails(t *testing.T) {
	b := newMgmtBed(t, 0)
	if err := b.server.Push(topo.NodeID(9999), mgmt.ConfigDTO{}, time.Second); err == nil {
		t.Error("push to unknown node should fail")
	}
}

func TestServerRejectsMalformedClients(t *testing.T) {
	server, err := mgmt.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	// Garbage before hello: connection dropped, no registration.
	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	// The 4-byte prefix claims a 4GB frame; the server must hang up.
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server kept a connection that announced an absurd frame")
	}
	_ = conn.Close()
	if got := server.Connected(); len(got) != 0 {
		t.Errorf("malformed client registered: %v", got)
	}
}

func TestAgentRejectsBadConfig(t *testing.T) {
	b := newMgmtBed(t, 0)
	node := b.dep.MBNodes[0]
	// A config whose policy repeats a function type: the node's Install
	// refuses it and the refusal travels back as the ack error.
	dto := mgmt.ConfigDTO{
		Strategy: int(enforce.HotPotato),
		Policies: []mgmt.PolicyDTO{{
			ID: 1, SrcBits: 0, DstBits: 0,
			SrcPortHi: 65535, DstPortHi: 65535,
			Actions: []int{int(policy.FuncFW), int(policy.FuncIDS), int(policy.FuncFW)},
		}},
	}
	err := b.server.Push(node, dto, 3*time.Second)
	if err == nil {
		t.Fatal("bad config accepted")
	}
	if !strings.Contains(err.Error(), "repeats function") {
		t.Errorf("refusal reason lost on the wire: %v", err)
	}
}

func TestAgentReconnectAfterServerRestart(t *testing.T) {
	b := newMgmtBed(t, 0)
	node := b.dep.MBNodes[0]
	// Close the agent and re-dial a fresh one to the same server: pushes
	// must work again (the server replaces the connection).
	b.agents[node].Close()
	dev := b.devices[node]
	agent, err := mgmt.NewAgent(dev, b.server.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if !b.server.WaitConnected(3*time.Second, node) {
		t.Fatal("reconnect did not register")
	}
	if err := b.server.Push(node, mgmt.ConfigToDTO(0, b.nodes[node].Config()), 3*time.Second); err != nil {
		t.Fatalf("push after reconnect: %v", err)
	}
}
