package mgmt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"

	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// frame serializes one message the way the channel does, for seeding.
func frame(f *testing.F, typ string, v interface{}) []byte {
	var buf bytes.Buffer
	if err := writeMsg(&buf, typ, v); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// seedConfig mirrors the configs the reconnect tests push: policies,
// candidate sets and LB weights on a labeled node.
func seedConfig() enforce.Config {
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	return enforce.Config{
		Policies: []*policy.Policy{
			{ID: 1, Prio: 1, Desc: d, Actions: policy.ActionList{policy.FuncFW, policy.FuncIDS}},
		},
		Candidates: map[policy.FuncType][]topo.NodeID{
			policy.FuncFW:  {10, 11},
			policy.FuncIDS: {12},
		},
		Weights: map[enforce.WeightKey][]float64{
			{PolicyID: 1, Func: policy.FuncFW}: {0.25, 0.75},
		},
		Strategy:       enforce.LoadBalanced,
		HashSeed:       7,
		LabelSwitching: true,
		FlowTTL:        1000,
	}
}

// FuzzWire hardens the management channel's framing and envelope codec:
// arbitrary bytes must never panic the reader, and any frame that parses
// must survive a write/read round trip with its type tag and payload
// semantically intact (JSON compaction may reformat the raw bytes).
func FuzzWire(f *testing.F) {
	f.Add(frame(f, TypeHello, Hello{NodeID: 3, Name: "proxy-edge1", Proxy: true, Epoch: 2}))
	f.Add(frame(f, TypeHelloAck, Hello{NodeID: 3}))
	f.Add(frame(f, TypeConfig, ConfigToDTO(9, seedConfig())))
	f.Add(frame(f, TypeConfig, WeightsToDTO(10, seedConfig().Weights)))
	f.Add(frame(f, TypeAck, Ack{Seq: 9, Epoch: 4, Error: "refused: stale epoch"}))
	f.Add(frame(f, TypeMeasure, Measure{NodeID: 3, Rows: []MeasureRow{
		{PolicyID: 1, SrcSubnet: 1, DstSubnet: 2, Packets: 41},
	}}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, maxFrame+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := readMsg(bytes.NewReader(data))
		if err != nil {
			return
		}
		raw := env.Data
		if raw == nil {
			// A missing "data" field re-marshals as JSON null.
			raw = json.RawMessage("null")
		}
		var buf bytes.Buffer
		if err := writeMsg(&buf, env.T, raw); err != nil {
			t.Fatalf("re-frame of parsed envelope failed: %v", err)
		}
		back, err := readMsg(&buf)
		if err != nil {
			t.Fatalf("re-read of re-framed envelope failed: %v", err)
		}
		if back.T != env.T {
			t.Fatalf("type tag changed across round trip: %q vs %q", back.T, env.T)
		}
		var want, got interface{}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("parsed envelope carries invalid data JSON: %v", err)
		}
		if err := json.Unmarshal(back.Data, &got); err != nil {
			t.Fatalf("round-tripped envelope carries invalid data JSON: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("data changed across round trip:\n%s\nvs\n%s", raw, back.Data)
		}
	})
}

// FuzzConfigDTO checks that the config codec is a fixed point: any
// ConfigDTO that decodes from JSON maps to an enforce.Config whose wire
// form decodes back to the identical Config. (The first hop may
// canonicalize — e.g. prefixes drop host bits — but canonical forms
// must be stable.)
func FuzzConfigDTO(f *testing.F) {
	for _, dto := range []ConfigDTO{
		ConfigToDTO(1, seedConfig()),
		WeightsToDTO(2, seedConfig().Weights),
		{Seq: 3, Policies: []PolicyDTO{{ID: 1, SrcAddr: 0x0a000001, SrcBits: 8, Actions: []int{1, 2}}}},
	} {
		b, err := json.Marshal(dto)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var dto ConfigDTO
		if err := json.Unmarshal(data, &dto); err != nil {
			return
		}
		cfg, err := ConfigFromDTO(dto)
		if err != nil {
			return
		}
		dto2 := ConfigToDTO(dto.Seq, cfg)
		cfg2, err := ConfigFromDTO(dto2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded config failed: %v", err)
		}
		if !reflect.DeepEqual(cfg, cfg2) {
			t.Fatalf("config not stable across round trip:\n%#v\nvs\n%#v", cfg, cfg2)
		}
	})
}
