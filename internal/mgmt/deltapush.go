package mgmt

import (
	"encoding/json"
	"fmt"
	"sync"

	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/topo"
)

// Delta rollout (controller pipeline Stage 3 on the wire). A delta push
// carries only what changed since the node's current epoch; the agent
// applies it in place, preserving flowtable soft state for untouched
// flows. Safety rests on two rules:
//
//  1. Base fencing. Every delta names the epoch it was diffed against
//     (BaseEpoch). An agent on any other epoch refuses it, and the server
//     falls back to a full push of the merged configuration at the same
//     epoch — a delta is never applied to a base it does not match.
//  2. Merge-at-store. Before anything hits the wire, the server merges
//     the delta into the node's recorded latest FULL configuration. The
//     reconnect catch-up path therefore always re-pushes full configs:
//     a node that was down through any number of delta epochs converges
//     in one push, never by replaying a delta chain.

// PushDelta sends a configuration delta to a node's agent with bounded
// retries. The epoch is minted once; the node's recorded latest plan
// becomes the delta-merged full configuration before the first attempt,
// so a failed push still heals via reconnect re-push. If the agent
// refuses the delta because its applied epoch does not match the base,
// the merged full configuration is pushed instead at the same epoch.
// Returns ErrNoBase when no full configuration was ever recorded for the
// node — the caller must push a full config first.
func (s *Server) PushDelta(node topo.NodeID, d enforce.ConfigDelta, pol RetryPolicy) error {
	pol = pol.fill()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("mgmt: delta push to %v: %w", node, ErrServerClosed)
	}
	if s.notLeader {
		s.mu.Unlock()
		return fmt.Errorf("mgmt: delta push to %v: %w", node, ErrNotLeader)
	}
	base, ok := s.latest[node]
	if !ok || base.WeightsOnly {
		s.mu.Unlock()
		return fmt.Errorf("mgmt: delta push to %v: %w", node, ErrNoBase)
	}
	s.epoch++
	ddto := DeltaToDTO(0, d)
	ddto.Epoch = s.epoch
	ddto.Term = s.term
	ddto.BaseEpoch = base.Epoch
	merged, err := s.mergeLatestLocked(node, base, ddto)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("mgmt: delta push to %v: merge: %w", node, err)
	}
	s.mu.Unlock()

	s.smInc(func(m *serverMetrics) *metrics.Counter { return m.deltaPushes })
	s.observePushBytes(TypeDelta, ddto, true)
	err = s.callRetry(node, TypeDelta, func(seq uint64) interface{} {
		ddto.Seq = seq
		return ddto
	}, pol, ddto.Epoch)
	if !IsBaseMismatch(err) {
		return err
	}
	// The agent runs an epoch other than the recorded base (e.g. a push
	// raced a reconnect re-push). The merged full configuration is exact
	// at this epoch, so send that instead.
	s.smInc(func(m *serverMetrics) *metrics.Counter { return m.deltaFallbacks })
	s.observePushBytes(TypeConfig, merged, false)
	return s.callRetry(node, TypeConfig, func(seq uint64) interface{} {
		merged.Seq = seq
		return merged
	}, pol, merged.Epoch)
}

// mergeLatestLocked folds a delta into the node's recorded latest full
// configuration and stores the result as the new latest (s.mu held).
// It returns the merged full ConfigDTO, which doubles as the fallback
// payload when the agent refuses the delta.
func (s *Server) mergeLatestLocked(node topo.NodeID, base ConfigDTO, ddto DeltaDTO) (ConfigDTO, error) {
	cfg, err := ConfigFromDTO(base)
	if err != nil {
		return ConfigDTO{}, err
	}
	d := DeltaFromDTO(ddto)
	out := ConfigToDTO(0, d.ApplyToConfig(cfg))
	out.Epoch = ddto.Epoch
	out.Term = ddto.Term
	s.latest[node] = out
	return out, nil
}

// PushAllDelta2PC rolls one plan generation out as per-node deltas under
// the same epoch-fenced two-phase protocol as PushAll2PC: every node
// stages its delta (or, where no delta is possible, the full fallback
// configuration), and only when all have staged does the commit flip
// them atomically. fallback supplies each node's full configuration for
// the new plan; it is REQUIRED for nodes the server has no recorded base
// for, and is substituted automatically when an agent refuses its
// delta's base epoch at prepare time. Nodes absent from deltas are not
// touched at all — that is the point of a delta rollout.
func (s *Server) PushAllDelta2PC(deltas map[topo.NodeID]enforce.ConfigDelta, fallback map[topo.NodeID]ConfigDTO, pol RetryPolicy) (uint64, error) {
	pol = pol.fill()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("mgmt: 2pc delta push: %w", ErrServerClosed)
	}
	if s.notLeader {
		s.mu.Unlock()
		return 0, fmt.Errorf("mgmt: 2pc delta push: %w", ErrNotLeader)
	}
	s.epoch++
	epoch := s.epoch
	term := s.term

	// Decide per node, under the lock, whether a delta can apply (a full
	// base is recorded) and precompute the merged full config either way:
	// it is stored as the node's latest at the commit decision and doubles
	// as the prepare fallback.
	type nodePlan struct {
		delta *DeltaDTO
		full  ConfigDTO
	}
	plans := make(map[topo.NodeID]*nodePlan, len(deltas))
	for node, d := range deltas {
		base, haveBase := s.latest[node]
		if haveBase && !base.WeightsOnly {
			ddto := DeltaToDTO(0, d)
			ddto.Epoch, ddto.Term, ddto.BaseEpoch = epoch, term, base.Epoch
			merged, err := s.mergeDTOLocked(base, ddto)
			if err != nil {
				s.mu.Unlock()
				return 0, fmt.Errorf("mgmt: 2pc delta push: merge for %v: %w", node, err)
			}
			plans[node] = &nodePlan{delta: &ddto, full: merged}
			continue
		}
		fb, ok := fallback[node]
		if !ok {
			s.mu.Unlock()
			return 0, fmt.Errorf("mgmt: 2pc delta push to %v: %w", node, ErrNoBase)
		}
		fb.Epoch, fb.Term = epoch, term
		plans[node] = &nodePlan{full: fb}
	}
	s.mu.Unlock()

	nodes := make([]topo.NodeID, 0, len(plans))
	for id := range plans {
		nodes = append(nodes, id)
	}
	nodes = topo.SortedIDs(nodes)

	// Phase 1: stage the delta (or fallback) everywhere. A base-epoch
	// refusal retries the prepare with the full merged configuration —
	// the plan content is identical, only the transport form degrades.
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		np := plans[node]
		wg.Add(1)
		go func(i int, node topo.NodeID, np *nodePlan) {
			defer wg.Done()
			s.smInc(func(m *serverMetrics) *metrics.Counter { return m.prepares })
			if np.delta != nil {
				s.smInc(func(m *serverMetrics) *metrics.Counter { return m.deltaPushes })
				s.observePushBytes(TypePrepareDelta, *np.delta, true)
				ddto := *np.delta
				errs[i] = s.callRetry(node, TypePrepareDelta, func(seq uint64) interface{} {
					ddto.Seq = seq
					return ddto
				}, pol, 0)
				if !IsBaseMismatch(errs[i]) {
					return
				}
				s.smInc(func(m *serverMetrics) *metrics.Counter { return m.deltaFallbacks })
			}
			dto := np.full
			s.observePushBytes(TypePrepare, dto, false)
			errs[i] = s.callRetry(node, TypePrepare, func(seq uint64) interface{} {
				dto.Seq = seq
				return dto
			}, pol, 0)
		}(i, node, np)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		s.smInc(func(m *serverMetrics) *metrics.Counter { return m.rollbacks })
		abortPol := RetryPolicy{Attempts: 1, PerAttempt: pol.PerAttempt}
		for _, node := range nodes {
			_ = s.callRetry(node, TypeAbort, func(seq uint64) interface{} {
				return Commit{Seq: seq, Epoch: epoch, Term: term}
			}, abortPol, 0)
		}
		return epoch, fmt.Errorf("mgmt: 2pc delta prepare failed at node %v (rolled back): %w", nodes[i], err)
	}

	// Decision: commit. Record the MERGED FULL configuration as every
	// node's latest first — reconnect catch-up must never replay deltas.
	s.mu.Lock()
	for _, node := range nodes {
		s.latest[node] = plans[node].full
	}
	s.mu.Unlock()

	// Phase 2: flip everywhere (identical to the full-config rollout).
	for i, node := range nodes {
		node := node
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.smInc(func(m *serverMetrics) *metrics.Counter { return m.commits })
			errs[i] = s.callRetry(node, TypeCommit, func(seq uint64) interface{} {
				return Commit{Seq: seq, Epoch: epoch, Term: term}
			}, pol, epoch)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return epoch, fmt.Errorf("mgmt: 2pc delta commit straggler %v (will heal via re-push): %w", nodes[i], err)
		}
	}
	return epoch, nil
}

// mergeDTOLocked is mergeLatestLocked without the store: it computes the
// full configuration that base + delta yields (s.mu held for the read of
// base, which the caller already did).
func (s *Server) mergeDTOLocked(base ConfigDTO, ddto DeltaDTO) (ConfigDTO, error) {
	cfg, err := ConfigFromDTO(base)
	if err != nil {
		return ConfigDTO{}, err
	}
	d := DeltaFromDTO(ddto)
	out := ConfigToDTO(0, d.ApplyToConfig(cfg))
	out.Epoch = ddto.Epoch
	out.Term = ddto.Term
	return out, nil
}

// handleDelta applies one pushed configuration delta and acks it — the
// direct (non-2PC) path, mirroring handleConfig's fencing order exactly:
// validate, term fence, epoch idempotence, then the delta-specific base
// check before anything touches the device.
func (a *Agent) handleDelta(data []byte) {
	var dto DeltaDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Error: "bad delta: " + err.Error()})
		return
	}
	// Trust boundary: nothing from the wire reaches Node.ApplyDelta
	// before Validate passes (enforced by the wiretaint analyzer).
	if err := dto.Validate(); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: err.Error()})
		return
	}
	if reason := a.fenceTerm(dto.Term); reason != "" {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Term: a.term.Load(), Error: reason})
		return
	}
	if dto.Epoch != 0 && dto.Epoch <= a.epoch.Load() {
		a.stale.Add(1)
		if a.am != nil {
			a.am.epochRejects.Inc()
		}
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch})
		return
	}
	errStr := a.applyDeltaDTO(dto)
	_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: errStr})
}

// handlePrepareDelta stages a delta without applying it. The base epoch
// is checked at stage time so a mismatch fails the prepare immediately
// and the server substitutes a full prepare — by commit time the fleet
// must already hold plans that can all flip.
func (a *Agent) handlePrepareDelta(data []byte) {
	var dto DeltaDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Error: "bad prepare-delta: " + err.Error(), Prepared: true})
		return
	}
	if err := dto.Validate(); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: err.Error(), Prepared: true})
		return
	}
	if reason := a.fenceTerm(dto.Term); reason != "" {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Term: a.term.Load(), Error: reason, Prepared: true})
		return
	}
	if dto.Epoch != 0 && dto.Epoch <= a.epoch.Load() {
		a.stale.Add(1)
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Prepared: true})
		return
	}
	if cur := a.epoch.Load(); cur != dto.BaseEpoch {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch,
			Error: fmt.Sprintf("%s: applied epoch %d, delta base %d", RefuseDeltaBase, cur, dto.BaseEpoch), Prepared: true})
		return
	}
	a.stagedMu.Lock()
	a.staged = &stagedPlan{epoch: dto.Epoch, delta: &dto}
	a.stagedMu.Unlock()
	a.prepared.Add(1)
	if a.am != nil {
		a.am.prepares.Inc()
	}
	_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Prepared: true})
}

// applyDeltaDTO validates and applies a delta to the device, returning an
// error string for the ack ("" on success) and advancing the applied
// epoch. Shared by the direct delta path and the commit path; the base
// check is repeated here because the staged copy crossed goroutines (and
// epochs may have advanced) since its prepare-time check.
func (a *Agent) applyDeltaDTO(dto DeltaDTO) string {
	if err := dto.Validate(); err != nil {
		return err.Error()
	}
	if cur := a.epoch.Load(); cur != dto.BaseEpoch {
		return fmt.Sprintf("%s: applied epoch %d, delta base %d", RefuseDeltaBase, cur, dto.BaseEpoch)
	}
	d := DeltaFromDTO(dto)
	errStr := ""
	applied := a.dev.Do(func(n *enforce.Node) {
		if err := n.ApplyDelta(d); err != nil {
			errStr = err.Error()
		}
	})
	if !applied {
		errStr = "device stopped"
	}
	if errStr == "" {
		a.applies.Add(1)
		a.deltaApplies.Add(1)
		if a.am != nil {
			a.am.applies.Inc()
			a.am.deltaApplies.Inc()
		}
		if dto.Epoch > a.epoch.Load() {
			a.epoch.Store(dto.Epoch)
		}
	}
	return errStr
}
