package mgmt

import (
	"encoding/json"
	"fmt"
	"sync"

	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/topo"
)

// Epoch-fenced two-phase rollout. A plain PushRetry configures nodes one
// by one, so a crash (or a refusal) partway through a multi-node rollout
// leaves some nodes on epoch N and others on N−1 — two plans mixed in
// one network, exactly the cross-node inconsistency verify.Consistency
// flags. PushAll2PC closes that window: every node first STAGES the new
// plan (prepare), and only when all of them have staged it does the
// server tell them to atomically flip (commit). If any prepare fails
// after retries, the staged plans are discarded (abort) and no node ever
// ran the new epoch. Nodes that die between prepare and commit converge
// through the existing reconnect catch-up: the commit decision records
// the plan as each node's latest, so a rejoining agent is re-pushed the
// committed plan idempotently.

// PushAll2PC rolls one plan generation out to all given nodes with
// prepare/commit fencing. It assigns a single fresh epoch to the batch
// and returns it. On a prepare-quorum failure the batch is aborted
// (best-effort, one attempt per staged node) and the error of the first
// failed prepare is returned: no node applied anything. After the commit
// decision, individual commit failures are returned as an error but the
// plan is already recorded as every node's latest — stragglers heal via
// reconnect re-push, and Converged reports the fleet's progress.
func (s *Server) PushAll2PC(plans map[topo.NodeID]ConfigDTO, pol RetryPolicy) (uint64, error) {
	pol = pol.fill()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("mgmt: 2pc push: %w", ErrServerClosed)
	}
	if s.notLeader {
		s.mu.Unlock()
		return 0, fmt.Errorf("mgmt: 2pc push: %w", ErrNotLeader)
	}
	s.epoch++
	epoch := s.epoch
	term := s.term
	s.mu.Unlock()

	nodes := make([]topo.NodeID, 0, len(plans))
	for id := range plans {
		nodes = append(nodes, id)
	}
	nodes = topo.SortedIDs(nodes)

	// Phase 1: stage the plan everywhere.
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		dto := plans[node]
		dto.Epoch = epoch
		dto.Term = term
		wg.Add(1)
		go func(i int, node topo.NodeID, dto ConfigDTO) {
			defer wg.Done()
			s.smInc(func(m *serverMetrics) *metrics.Counter { return m.prepares })
			s.observePushBytes(TypePrepare, dto, false)
			errs[i] = s.callRetry(node, TypePrepare, func(seq uint64) interface{} {
				dto.Seq = seq
				return dto
			}, pol, 0)
		}(i, node, dto)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		// Prepare quorum failed: roll the staged plans back. Best-effort
		// single attempts — an unreachable agent discards its stale stage
		// anyway when a newer epoch arrives.
		s.smInc(func(m *serverMetrics) *metrics.Counter { return m.rollbacks })
		abortPol := RetryPolicy{Attempts: 1, PerAttempt: pol.PerAttempt}
		for _, node := range nodes {
			_ = s.callRetry(node, TypeAbort, func(seq uint64) interface{} {
				return Commit{Seq: seq, Epoch: epoch, Term: term}
			}, abortPol, 0)
		}
		return epoch, fmt.Errorf("mgmt: 2pc prepare failed at node %v (rolled back): %w", nodes[i], err)
	}

	// Decision: commit. Record the plan as every node's latest FIRST, so
	// even a node that dies right now converges via reconnect re-push.
	s.mu.Lock()
	for _, node := range nodes {
		dto := plans[node]
		dto.Epoch = epoch
		dto.Term = term
		s.storeLatestLocked(node, dto)
	}
	s.mu.Unlock()

	// Phase 2: flip everywhere.
	for i, node := range nodes {
		node := node
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.smInc(func(m *serverMetrics) *metrics.Counter { return m.commits })
			errs[i] = s.callRetry(node, TypeCommit, func(seq uint64) interface{} {
				return Commit{Seq: seq, Epoch: epoch, Term: term}
			}, pol, epoch)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return epoch, fmt.Errorf("mgmt: 2pc commit straggler %v (will heal via re-push): %w", nodes[i], err)
		}
	}
	return epoch, nil
}

// stagedPlan is an agent's prepared-but-not-applied configuration: a
// full ConfigDTO from a TypePrepare, or a DeltaDTO from a
// TypePrepareDelta (delta non-nil wins).
type stagedPlan struct {
	epoch uint64
	dto   ConfigDTO
	delta *DeltaDTO
}

// handlePrepare validates and stages a plan without applying it. The ack
// carries Prepared so the server never mistakes "staged" for "running".
func (a *Agent) handlePrepare(data []byte) {
	var dto ConfigDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Error: "bad prepare: " + err.Error(), Prepared: true})
		return
	}
	// Trust boundary: refuse at stage time, not commit time — a plan that
	// cannot be applied must fail the quorum before any node flips.
	if err := dto.Validate(); err != nil {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Error: err.Error(), Prepared: true})
		return
	}
	// A deposed leader must not stage plans either: a stale-term prepare
	// fails its quorum at every fenced agent.
	if reason := a.fenceTerm(dto.Term); reason != "" {
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Term: a.term.Load(), Error: reason, Prepared: true})
		return
	}
	if dto.Epoch != 0 && dto.Epoch <= a.epoch.Load() {
		// Already applied (a reconnect re-push overtook the rollout):
		// staging again is pointless; ack idempotently.
		a.stale.Add(1)
		_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Prepared: true})
		return
	}
	a.stagedMu.Lock()
	// A newer prepare supersedes an older staged plan (the older epoch's
	// commit can no longer win: its quorum failed or this one would not
	// have been issued).
	a.staged = &stagedPlan{epoch: dto.Epoch, dto: dto}
	a.stagedMu.Unlock()
	a.prepared.Add(1)
	if a.am != nil {
		a.am.prepares.Inc()
	}
	_ = a.write(TypeAck, Ack{Seq: dto.Seq, Epoch: dto.Epoch, Prepared: true})
}

// handleCommit atomically applies the staged plan for the named epoch.
func (a *Agent) handleCommit(data []byte) {
	var cm Commit
	if err := json.Unmarshal(data, &cm); err != nil {
		_ = a.write(TypeAck, Ack{Seq: cm.Seq, Error: "bad commit: " + err.Error()})
		return
	}
	if err := cm.Validate(); err != nil {
		_ = a.write(TypeAck, Ack{Seq: cm.Seq, Error: err.Error()})
		return
	}
	// Same fence as prepare: a deposed leader's commit decision is void.
	if reason := a.fenceTerm(cm.Term); reason != "" {
		_ = a.write(TypeAck, Ack{Seq: cm.Seq, Epoch: cm.Epoch, Term: a.term.Load(), Error: reason})
		return
	}
	if cm.Epoch <= a.epoch.Load() {
		// Duplicate commit (retry crossing an earlier ack): idempotent.
		a.stale.Add(1)
		_ = a.write(TypeAck, Ack{Seq: cm.Seq, Epoch: cm.Epoch})
		return
	}
	a.stagedMu.Lock()
	st := a.staged
	if st != nil && st.epoch == cm.Epoch {
		a.staged = nil
	}
	a.stagedMu.Unlock()
	if st == nil || st.epoch != cm.Epoch {
		_ = a.write(TypeAck, Ack{Seq: cm.Seq, Epoch: cm.Epoch,
			Error: fmt.Sprintf("no staged plan for epoch %d", cm.Epoch)})
		return
	}
	// applyDTO / applyDeltaDTO re-validate before installing (defense in
	// depth at the wire trust boundary; the staged copy crossed goroutines
	// since its prepare-time check).
	var errStr string
	if st.delta != nil {
		errStr = a.applyDeltaDTO(*st.delta)
	} else {
		dto := st.dto
		dto.Seq = cm.Seq
		errStr = a.applyDTO(dto)
	}
	if errStr == "" {
		a.committed.Add(1)
		if a.am != nil {
			a.am.commits.Inc()
		}
	}
	_ = a.write(TypeAck, Ack{Seq: cm.Seq, Epoch: cm.Epoch, Error: errStr})
}

// handleAbort discards a staged plan; aborting an epoch that was never
// staged (or already superseded) acks successfully — abort is the
// "make sure it never runs" message, and it never ran.
func (a *Agent) handleAbort(data []byte) {
	var cm Commit
	if err := json.Unmarshal(data, &cm); err != nil {
		_ = a.write(TypeAck, Ack{Seq: cm.Seq, Error: "bad abort: " + err.Error()})
		return
	}
	if err := cm.Validate(); err != nil {
		_ = a.write(TypeAck, Ack{Seq: cm.Seq, Error: err.Error()})
		return
	}
	a.stagedMu.Lock()
	if a.staged != nil && a.staged.epoch == cm.Epoch {
		a.staged = nil
		a.aborted.Add(1)
		if a.am != nil {
			a.am.aborts.Inc()
		}
	}
	a.stagedMu.Unlock()
	_ = a.write(TypeAck, Ack{Seq: cm.Seq, Epoch: cm.Epoch})
}

// StagedEpoch returns the epoch of the currently staged (uncommitted)
// plan, 0 if none — test and conformance hook.
func (a *Agent) StagedEpoch() uint64 {
	a.stagedMu.Lock()
	defer a.stagedMu.Unlock()
	if a.staged == nil {
		return 0
	}
	return a.staged.epoch
}

// applyDTO validates and applies a configuration to the device, returning
// an error string for the ack ("" on success) and advancing the agent's
// applied epoch. Shared by the direct config path and the commit path.
func (a *Agent) applyDTO(dto ConfigDTO) string {
	if err := dto.Validate(); err != nil {
		return err.Error()
	}
	errStr := ""
	if dto.WeightsOnly {
		w := WeightsFromDTO(dto.Weights)
		if !a.dev.Do(func(n *enforce.Node) { n.SetWeights(w) }) {
			errStr = "device stopped"
		}
	} else {
		cfg, err := ConfigFromDTO(dto)
		if err != nil {
			errStr = err.Error()
		} else {
			applied := a.dev.Do(func(n *enforce.Node) {
				if ierr := n.Install(cfg); ierr != nil {
					errStr = ierr.Error()
				}
			})
			if !applied {
				errStr = "device stopped"
			}
		}
	}
	if errStr == "" {
		a.applies.Add(1)
		if a.am != nil {
			a.am.applies.Inc()
		}
		if dto.Epoch > a.epoch.Load() {
			a.epoch.Store(dto.Epoch)
		}
	}
	return errStr
}
