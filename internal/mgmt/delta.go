package mgmt

import (
	"errors"
	"sort"
	"strings"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Wire form of the incremental pipeline's configuration deltas
// (controller.DiffPlans → enforce.ConfigDelta). A delta names the exact
// configuration epoch it edits: agents running any other epoch refuse it
// (reason prefix RefuseDeltaBase) and the server falls back to a full
// push of the merged configuration — a delta must never be applied on
// top of a base it was not diffed against.

// RefuseDeltaBase prefixes an agent's refusal of a delta whose BaseEpoch
// does not match the agent's applied epoch. The server recognizes the
// prefix and substitutes a full-configuration push at the same epoch.
const RefuseDeltaBase = "delta base mismatch"

// ErrNoBase: the server has no full configuration recorded for the node,
// so there is nothing a delta could edit; the caller must push (or
// supply as fallback) a full configuration instead.
var ErrNoBase = errors.New("no full base config recorded for delta")

// IsBaseMismatch reports whether err is an agent's base-epoch refusal of
// a delta push — the one refusal that is not fatal, because re-sending
// the merged full configuration deterministically succeeds.
func IsBaseMismatch(err error) bool {
	var r *RefusedError
	return errors.As(err, &r) && strings.HasPrefix(r.Reason, RefuseDeltaBase)
}

// WeightKeyDTO is the wire form of one weight-vector key (a WeightDTO
// without its vector) — the delta's drop list.
type WeightKeyDTO struct {
	PolicyID  int `json:"policy_id"`
	Func      int `json:"func"`
	SrcSubnet int `json:"src,omitempty"`
	DstSubnet int `json:"dst,omitempty"`
}

// DeltaDTO is a per-node configuration delta push: the edit script that
// transforms the configuration of epoch BaseEpoch into the one of Epoch.
// Seq/Epoch/Term follow ConfigDTO's conventions exactly; every slice is
// sorted, so equal deltas encode to identical wire bytes.
type DeltaDTO struct {
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch,omitempty"`
	Term  uint64 `json:"term,omitempty"`
	// BaseEpoch is the configuration epoch this delta edits. The agent
	// checks it against its applied epoch before touching anything.
	BaseEpoch      uint64         `json:"base_epoch"`
	Upserts        []PolicyDTO    `json:"upserts,omitempty"`
	Removes        []int          `json:"removes,omitempty"`
	SetCandidates  []CandidateDTO `json:"set_candidates,omitempty"`
	DropCandidates []int          `json:"drop_candidates,omitempty"`
	SetWeights     []WeightDTO    `json:"set_weights,omitempty"`
	DropWeights    []WeightKeyDTO `json:"drop_weights,omitempty"`
}

// DeltaToDTO serializes a configuration delta for the wire. Output order
// is canonical (policies by priority then ID, candidate lists by function
// code, weight rows by key), independent of map iteration.
func DeltaToDTO(seq uint64, d enforce.ConfigDelta) DeltaDTO {
	dto := DeltaDTO{Seq: seq}
	for _, p := range d.Upserts {
		dto.Upserts = append(dto.Upserts, policyToDTO(p))
	}
	sort.Slice(dto.Upserts, func(i, j int) bool {
		a, b := dto.Upserts[i], dto.Upserts[j]
		if a.Prio != b.Prio {
			return a.Prio < b.Prio
		}
		return a.ID < b.ID
	})
	dto.Removes = append(dto.Removes, d.Removes...)
	sort.Ints(dto.Removes)

	funcs := make([]policy.FuncType, 0, len(d.SetCandidates))
	for f := range d.SetCandidates {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i] < funcs[j] })
	for _, f := range funcs {
		cd := CandidateDTO{Func: int(f)}
		for _, n := range d.SetCandidates[f] {
			cd.Nodes = append(cd.Nodes, int(n))
		}
		dto.SetCandidates = append(dto.SetCandidates, cd)
	}
	for _, f := range d.DropCandidates {
		dto.DropCandidates = append(dto.DropCandidates, int(f))
	}
	sort.Ints(dto.DropCandidates)

	keys := make([]enforce.WeightKey, 0, len(d.SetWeights))
	for k := range d.SetWeights {
		keys = append(keys, k)
	}
	sortWeightKeys(keys)
	for _, k := range keys {
		dto.SetWeights = append(dto.SetWeights, WeightDTO{
			PolicyID: k.PolicyID, Func: int(k.Func),
			SrcSubnet: k.SrcSubnet, DstSubnet: k.DstSubnet,
			Weights: d.SetWeights[k],
		})
	}
	drops := append([]enforce.WeightKey(nil), d.DropWeights...)
	sortWeightKeys(drops)
	for _, k := range drops {
		dto.DropWeights = append(dto.DropWeights, WeightKeyDTO{
			PolicyID: k.PolicyID, Func: int(k.Func),
			SrcSubnet: k.SrcSubnet, DstSubnet: k.DstSubnet,
		})
	}
	return dto
}

// DeltaFromDTO reconstructs a configuration delta from the wire form.
func DeltaFromDTO(dto DeltaDTO) enforce.ConfigDelta {
	var d enforce.ConfigDelta
	for _, pd := range dto.Upserts {
		d.Upserts = append(d.Upserts, policyFromDTO(pd))
	}
	d.Removes = append(d.Removes, dto.Removes...)
	if len(dto.SetCandidates) > 0 {
		d.SetCandidates = make(map[policy.FuncType][]topo.NodeID, len(dto.SetCandidates))
		for _, cd := range dto.SetCandidates {
			nodes := make([]topo.NodeID, len(cd.Nodes))
			for i, n := range cd.Nodes {
				nodes[i] = topo.NodeID(n)
			}
			d.SetCandidates[policy.FuncType(cd.Func)] = nodes
		}
	}
	for _, f := range dto.DropCandidates {
		d.DropCandidates = append(d.DropCandidates, policy.FuncType(f))
	}
	if len(dto.SetWeights) > 0 {
		d.SetWeights = WeightsFromDTO(dto.SetWeights)
	}
	for _, k := range dto.DropWeights {
		d.DropWeights = append(d.DropWeights, enforce.WeightKey{
			PolicyID: k.PolicyID, Func: policy.FuncType(k.Func),
			SrcSubnet: k.SrcSubnet, DstSubnet: k.DstSubnet,
		})
	}
	return d
}

func sortWeightKeys(keys []enforce.WeightKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.PolicyID != b.PolicyID {
			return a.PolicyID < b.PolicyID
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.SrcSubnet != b.SrcSubnet {
			return a.SrcSubnet < b.SrcSubnet
		}
		return a.DstSubnet < b.DstSubnet
	})
}
