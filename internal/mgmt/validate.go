package mgmt

import (
	"fmt"
	"math"

	"sdme/internal/enforce"
)

// This file is the trust boundary of the management channel. Every DTO
// that arrives off the wire must pass its Validate method before any
// field reaches enforcement state (Node.Install, SetWeights) or the
// controller's solver inputs — the wiretaint analyzer (internal/lint)
// enforces that rule at build time, and these are the sanitizers it
// recognizes. Validation is structural: range checks that hold for any
// well-formed peer, not policy decisions. A frame that fails here is
// refused with an error Ack (configs) or dropped with a closed
// connection (handshakes and reports); it must never be half-applied.

// maxNameLen bounds free-form identity strings from the wire.
const maxNameLen = 256

// Validate checks a configuration push for structural sanity: strategy
// in range, prefix bits within IPv4 width, port ranges ordered, action
// and function codes positive, TTLs non-negative, weights finite and
// non-negative. WeightsOnly pushes skip the full-config checks.
func (d *ConfigDTO) Validate() error {
	if !d.WeightsOnly {
		switch enforce.Strategy(d.Strategy) {
		case enforce.HotPotato, enforce.Random, enforce.LoadBalanced:
		default:
			return fmt.Errorf("mgmt: config seq %d: unknown strategy %d", d.Seq, d.Strategy)
		}
		if d.FlowTTL < 0 || d.LabelTTL < 0 {
			return fmt.Errorf("mgmt: config seq %d: negative TTL (flow %d, label %d)", d.Seq, d.FlowTTL, d.LabelTTL)
		}
		for i, p := range d.Policies {
			if err := p.validate(); err != nil {
				return fmt.Errorf("mgmt: config seq %d: policy[%d]: %w", d.Seq, i, err)
			}
		}
		for i, c := range d.Candidates {
			if c.Func <= 0 {
				return fmt.Errorf("mgmt: config seq %d: candidates[%d]: function code %d out of range", d.Seq, i, c.Func)
			}
			for _, n := range c.Nodes {
				if n < 0 {
					return fmt.Errorf("mgmt: config seq %d: candidates[%d]: negative node id %d", d.Seq, i, n)
				}
			}
		}
	}
	for i, w := range d.Weights {
		if err := w.validate(); err != nil {
			return fmt.Errorf("mgmt: config seq %d: weights[%d]: %w", d.Seq, i, err)
		}
	}
	return nil
}

// Validate checks a configuration delta for the same structural sanity a
// full config gets: upserted policies well-formed, candidate and removal
// identifiers in range, weight vectors finite and non-negative. An agent
// must pass it before any field reaches Node.ApplyDelta.
func (d *DeltaDTO) Validate() error {
	for i, p := range d.Upserts {
		if err := p.validate(); err != nil {
			return fmt.Errorf("mgmt: delta seq %d: upsert[%d]: %w", d.Seq, i, err)
		}
	}
	for i, id := range d.Removes {
		if id < 0 {
			return fmt.Errorf("mgmt: delta seq %d: removes[%d]: negative policy id %d", d.Seq, i, id)
		}
	}
	for i, c := range d.SetCandidates {
		if c.Func <= 0 {
			return fmt.Errorf("mgmt: delta seq %d: set_candidates[%d]: function code %d out of range", d.Seq, i, c.Func)
		}
		for _, n := range c.Nodes {
			if n < 0 {
				return fmt.Errorf("mgmt: delta seq %d: set_candidates[%d]: negative node id %d", d.Seq, i, n)
			}
		}
	}
	for i, f := range d.DropCandidates {
		if f <= 0 {
			return fmt.Errorf("mgmt: delta seq %d: drop_candidates[%d]: function code %d out of range", d.Seq, i, f)
		}
	}
	for i, w := range d.SetWeights {
		if err := w.validate(); err != nil {
			return fmt.Errorf("mgmt: delta seq %d: set_weights[%d]: %w", d.Seq, i, err)
		}
	}
	for i, k := range d.DropWeights {
		if k.PolicyID < 0 || k.Func <= 0 || k.SrcSubnet < 0 || k.DstSubnet < 0 {
			return fmt.Errorf("mgmt: delta seq %d: drop_weights[%d]: identifier out of range", d.Seq, i)
		}
	}
	return nil
}

func (p *PolicyDTO) validate() error {
	if p.ID < 0 {
		return fmt.Errorf("negative policy id %d", p.ID)
	}
	if p.SrcBits < 0 || p.SrcBits > 32 || p.DstBits < 0 || p.DstBits > 32 {
		return fmt.Errorf("prefix bits out of range (src /%d, dst /%d)", p.SrcBits, p.DstBits)
	}
	if p.SrcPortLo > p.SrcPortHi {
		return fmt.Errorf("inverted src port range [%d,%d]", p.SrcPortLo, p.SrcPortHi)
	}
	if p.DstPortLo > p.DstPortHi {
		return fmt.Errorf("inverted dst port range [%d,%d]", p.DstPortLo, p.DstPortHi)
	}
	if len(p.Actions) == 0 {
		return fmt.Errorf("policy %d has no actions", p.ID)
	}
	for _, a := range p.Actions {
		if a <= 0 {
			return fmt.Errorf("policy %d: action code %d out of range", p.ID, a)
		}
	}
	return nil
}

func (w *WeightDTO) validate() error {
	if w.Func <= 0 {
		return fmt.Errorf("function code %d out of range", w.Func)
	}
	if len(w.Weights) == 0 {
		return fmt.Errorf("policy %d: empty weight vector", w.PolicyID)
	}
	for _, v := range w.Weights {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("policy %d: weight %v is not a finite non-negative number", w.PolicyID, v)
		}
	}
	return nil
}

// Validate checks a two-phase commit/abort decision: it must name a real
// epoch, or the agent cannot match it against its staged plan.
func (c *Commit) Validate() error {
	if c.Epoch == 0 {
		return fmt.Errorf("mgmt: commit seq %d: zero epoch", c.Seq)
	}
	return nil
}

// Validate checks an agent handshake.
func (h *Hello) Validate() error {
	if h.NodeID < 0 {
		return fmt.Errorf("mgmt: hello: negative node id %d", h.NodeID)
	}
	if len(h.Name) > maxNameLen {
		return fmt.Errorf("mgmt: hello: name longer than %d bytes", maxNameLen)
	}
	return nil
}

// Validate checks a lease bid: replica identity must be a real index and
// the term positive (term 0 is the unfenced single-controller sentinel,
// never a ballot).
func (r *LeaseRequest) Validate() error {
	if r.Candidate < 0 {
		return fmt.Errorf("mgmt: lease request: negative candidate %d", r.Candidate)
	}
	if r.Term == 0 {
		return fmt.Errorf("mgmt: lease request: zero term")
	}
	if r.JournalBytes < 0 {
		return fmt.Errorf("mgmt: lease request: negative journal length %d", r.JournalBytes)
	}
	return nil
}

// Validate checks a lease grant.
func (g *LeaseGrant) Validate() error {
	if g.Voter < 0 {
		return fmt.Errorf("mgmt: lease grant: negative voter %d", g.Voter)
	}
	if g.Term == 0 {
		return fmt.Errorf("mgmt: lease grant: zero term")
	}
	return nil
}

// Validate checks a heartbeat.
func (h *Heartbeat) Validate() error {
	if h.Leader < 0 {
		return fmt.Errorf("mgmt: heartbeat: negative replica %d", h.Leader)
	}
	if h.Term == 0 {
		return fmt.Errorf("mgmt: heartbeat: zero term")
	}
	if h.JournalBytes < 0 {
		return fmt.Errorf("mgmt: heartbeat: negative journal length %d", h.JournalBytes)
	}
	return nil
}

// Validate checks a redirect before the agent re-dials the named address.
func (n *NotLeader) Validate() error {
	if len(n.LeaderAddr) > maxNameLen {
		return fmt.Errorf("mgmt: not-leader: address longer than %d bytes", maxNameLen)
	}
	return nil
}

// Validate checks a replication frame batch's envelope fields; the
// per-record length+CRC validation happens in the standby decoder, which
// never applies anything past a bad checksum.
func (f *JournalFrame) Validate() error {
	if f.Leader < 0 {
		return fmt.Errorf("mgmt: journal frame: negative leader %d", f.Leader)
	}
	if f.Term == 0 {
		return fmt.Errorf("mgmt: journal frame: zero term")
	}
	if f.Offset < 0 {
		return fmt.Errorf("mgmt: journal frame: negative offset %d", f.Offset)
	}
	return nil
}

// Validate checks a catch-up request.
func (f *JournalFetch) Validate() error {
	if f.Standby < 0 {
		return fmt.Errorf("mgmt: journal fetch: negative standby %d", f.Standby)
	}
	if f.From < 0 {
		return fmt.Errorf("mgmt: journal fetch: negative offset %d", f.From)
	}
	return nil
}

// Validate checks a replication ack.
func (a *JournalAck) Validate() error {
	if a.Standby < 0 {
		return fmt.Errorf("mgmt: journal ack: negative standby %d", a.Standby)
	}
	if a.Bytes < 0 {
		return fmt.Errorf("mgmt: journal ack: negative journal length %d", a.Bytes)
	}
	return nil
}

// Validate checks a proxy measurement report before it reaches the
// controller's solver input (§III-C): packet counts must be
// non-negative or the rebalance divides by garbage.
func (m *Measure) Validate() error {
	if m.NodeID < 0 {
		return fmt.Errorf("mgmt: measure: negative node id %d", m.NodeID)
	}
	for i, r := range m.Rows {
		if r.Packets < 0 {
			return fmt.Errorf("mgmt: measure row %d: negative packet count %d", i, r.Packets)
		}
		if r.PolicyID < 0 || r.SrcSubnet < 0 || r.DstSubnet < 0 {
			return fmt.Errorf("mgmt: measure row %d: negative identifier", i)
		}
	}
	return nil
}
