package mgmt

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// seedDelta mirrors the deltas the incremental pipeline emits: a policy
// upsert, a removal, a candidate-list change, and weight edits.
func seedDelta() enforce.ConfigDelta {
	base := seedConfig()
	return enforce.ConfigDelta{
		Upserts:        []*policy.Policy{base.Policies[0]},
		Removes:        []int{2},
		SetCandidates:  map[policy.FuncType][]topo.NodeID{policy.FuncIDS: {12, 13}},
		DropCandidates: []policy.FuncType{policy.FuncWP},
		SetWeights: map[enforce.WeightKey][]float64{
			{PolicyID: 1, Func: policy.FuncFW}: {0.5, 0.5},
		},
		DropWeights: []enforce.WeightKey{{PolicyID: 2, Func: policy.FuncIDS}},
	}
}

// fuzzProxyDeployment builds one small deployment the apply-never-panics
// check creates fresh nodes from (a node per fuzz input: ApplyDelta
// mutates node state and fuzz workers run in parallel).
func fuzzProxyDeployment(f *testing.F) (*enforce.Deployment, topo.NodeID) {
	f.Helper()
	rng := rand.New(rand.NewSource(1))
	g := topo.Campus(topo.CampusConfig{Gateways: 1, CoreRouters: 2, EdgeRouters: 1, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		f.Fatal(err)
	}
	return dep, dep.ProxyNodes[0]
}

// FuzzConfigDelta hardens the delta wire path end to end: any DeltaDTO
// that decodes from JSON must (1) have a stable canonical wire form —
// DeltaToDTO∘DeltaFromDTO is a fixed point — and (2) never panic the
// apply path: a validated delta applied to a pure Config copy and to a
// live Node may be refused with an error, but must not crash either.
func FuzzConfigDelta(f *testing.F) {
	for _, dto := range []DeltaDTO{
		DeltaToDTO(1, seedDelta()),
		{Seq: 2, BaseEpoch: 3, Removes: []int{1, 2, 3}},
		{Seq: 3, Upserts: []PolicyDTO{{ID: 1, Prio: 2, SrcAddr: 0x0a000001, SrcBits: 8, Actions: []int{1}}}},
		{Seq: 4, SetWeights: []WeightDTO{{PolicyID: 1, Func: 1, Weights: []float64{1}}},
			DropWeights: []WeightKeyDTO{{PolicyID: 9, Func: 2}}},
	} {
		b, err := json.Marshal(dto)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	dep, proxyID := fuzzProxyDeployment(f)
	base := seedConfig()

	f.Fuzz(func(t *testing.T, data []byte) {
		var dto DeltaDTO
		if err := json.Unmarshal(data, &dto); err != nil {
			return
		}
		// Codec fixed point: the canonical form re-encodes to itself.
		d := DeltaFromDTO(dto)
		canon := DeltaToDTO(dto.Seq, d)
		again := DeltaToDTO(dto.Seq, DeltaFromDTO(canon))
		if !reflect.DeepEqual(canon, again) {
			t.Fatalf("delta not stable across round trip:\n%#v\nvs\n%#v", canon, again)
		}

		// Apply never panics. The wire trust boundary guarantees Validate
		// ran before ApplyDelta, so only validated deltas reach a node.
		if dto.Validate() != nil {
			return
		}
		dv := DeltaFromDTO(dto)
		_ = dv.ApplyToConfig(base)
		n := enforce.NewProxy(dep, proxyID)
		if err := n.Install(base); err != nil {
			t.Fatalf("install seed config: %v", err)
		}
		_ = n.ApplyDelta(dv)
	})
}
