// Package mgmt implements the management channel of the paper's
// architecture (§III-A): the centralized controller configures
// software-defined middleboxes and policy proxies over the network, and
// the proxies report their traffic measurements back (§III-C). Messages
// are length-prefixed JSON over TCP; agents embed in the live runtime's
// devices and apply configuration inside each device's own goroutine.
//
// This is the piece that makes the controller "software-defined" rather
// than in-process: the same enforce.Config that unit tests install
// directly travels here as a wire message.
package mgmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// maxFrame bounds a message frame (a Waxman-scale config with hundreds
// of policies fits comfortably).
const maxFrame = 16 << 20

// Envelope wraps every wire message with its type tag.
type Envelope struct {
	T    string          `json:"t"`
	Data json.RawMessage `json:"data"`
}

// Message type tags.
const (
	TypeHello = "hello"
	// TypeHelloAck confirms a HELLO: the server has registered this
	// connection as the node's current one. Agents block their handshake
	// on it, so "agent connected" implies "pushes route here" — without
	// it, a push racing a reconnect can land on the dying predecessor
	// connection.
	TypeHelloAck = "hello-ack"
	TypeConfig   = "config"
	TypeAck      = "ack"
	TypeMeasure  = "measure"
	// TypePrepare / TypeCommit / TypeAbort are the epoch-fenced two-phase
	// rollout (twophase.go): prepare carries a ConfigDTO the agent stages
	// without applying; commit atomically flips the node to the staged
	// plan; abort discards it after a prepare-quorum failure.
	TypePrepare = "prepare"
	TypeCommit  = "commit"
	TypeAbort   = "abort"
	// TypeDelta carries a DeltaDTO — the incremental pipeline's per-node
	// edit script, applied in place by the agent without reinstalling the
	// untouched parts of the configuration. TypePrepareDelta is the same
	// payload staged under the two-phase rollout: commit/abort reuse
	// TypeCommit/TypeAbort unchanged.
	TypeDelta        = "delta"
	TypePrepareDelta = "prepare-delta"
	// TypeLeaseRequest / TypeLeaseGrant / TypeHeartbeat are the
	// controller-replica election protocol (internal/controller/election.go):
	// a candidate asks its peers for a term-scoped lease, peers grant at
	// most one lease per term, and the winner refreshes its leadership with
	// periodic heartbeats that double as replication progress reports.
	TypeLeaseRequest = "lease-request"
	TypeLeaseGrant   = "lease-grant"
	TypeHeartbeat    = "heartbeat"
	// TypeNotLeader is a standby's redirect: an agent that hellos a
	// non-leader replica is bounced here with the current leader's
	// management address, so it re-homes within one backoff cycle.
	TypeNotLeader = "not-leader"
	// TypeJournalFrame / TypeJournalFetch / TypeJournalAck stream the
	// leader's write-ahead journal to standbys (controller/replicate.go):
	// frames carry raw length+CRC32 journal records at an exact offset,
	// fetch requests catch-up from a standby's current length, and acks
	// report each standby's durable journal length back to the leader.
	TypeJournalFrame = "journal-frame"
	TypeJournalFetch = "journal-fetch"
	TypeJournalAck   = "journal-ack"
)

// Hello announces an agent to the server. Epoch is the last
// configuration epoch the agent successfully applied (0 = never
// configured); a reconnecting agent reports it so the server can
// idempotently re-push the latest plan only when the agent is behind.
type Hello struct {
	NodeID int    `json:"node_id"`
	Name   string `json:"name"`
	Proxy  bool   `json:"proxy"`
	Epoch  uint64 `json:"epoch,omitempty"`
}

// PolicyDTO is a lossless wire form of one policy.
type PolicyDTO struct {
	ID        int    `json:"id"`
	Prio      int    `json:"prio"`
	SrcAddr   uint32 `json:"src_addr"`
	SrcBits   int    `json:"src_bits"`
	DstAddr   uint32 `json:"dst_addr"`
	DstBits   int    `json:"dst_bits"`
	SrcPortLo uint16 `json:"sp_lo"`
	SrcPortHi uint16 `json:"sp_hi"`
	DstPortLo uint16 `json:"dp_lo"`
	DstPortHi uint16 `json:"dp_hi"`
	Proto     uint8  `json:"proto"`
	Actions   []int  `json:"actions"`
}

// CandidateDTO is one candidate set M_x^e.
type CandidateDTO struct {
	Func  int   `json:"func"`
	Nodes []int `json:"nodes"`
}

// WeightDTO is one LB weight vector.
type WeightDTO struct {
	PolicyID  int       `json:"policy_id"`
	Func      int       `json:"func"`
	SrcSubnet int       `json:"src,omitempty"`
	DstSubnet int       `json:"dst,omitempty"`
	Weights   []float64 `json:"w"`
}

// ConfigDTO is a full node configuration push. Seq identifies one wire
// attempt (assigned per send); Epoch identifies the logical plan
// generation (assigned once per Push, monotonic across the server's
// lifetime) — a re-pushed plan keeps its epoch under a fresh seq, and
// agents apply each epoch at most once.
type ConfigDTO struct {
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch,omitempty"`
	// Term is the pushing leader's election term (0 = single-controller
	// deployment, unfenced). Agents track the highest term they have seen
	// and refuse pushes from older terms, so a deposed leader that still
	// holds connections cannot roll the fleet back (split-brain fencing).
	Term           uint64         `json:"term,omitempty"`
	Strategy       int            `json:"strategy"`
	HashSeed       uint64         `json:"hash_seed"`
	LabelSwitching bool           `json:"label_switching"`
	FlowTTL        int64          `json:"flow_ttl"`
	LabelTTL       int64          `json:"label_ttl"`
	UseTrie        bool           `json:"use_trie"`
	Policies       []PolicyDTO    `json:"policies"`
	Candidates     []CandidateDTO `json:"candidates"`
	Weights        []WeightDTO    `json:"weights,omitempty"`
	// WeightsOnly applies only the weight vectors, preserving tables and
	// soft state (the §III-C periodic rebalance).
	WeightsOnly bool `json:"weights_only,omitempty"`
}

// Ack confirms (or refuses) a config push. Epoch echoes the config's
// epoch so the server's convergence record never regresses on a stale
// ack arriving late. Prepared marks phase-1 acks of the two-phase
// rollout: the plan is staged, not applied, so the server must not count
// the epoch as converged off such an ack.
type Ack struct {
	Seq      uint64 `json:"seq"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Error    string `json:"error,omitempty"`
	Prepared bool   `json:"prepared,omitempty"`
	// Term echoes the agent's highest-seen leader term on a stale-term
	// refusal, so a deposed leader learns which term displaced it.
	Term uint64 `json:"term,omitempty"`
}

// Commit is the phase-2 decision message of the two-phase rollout
// (TypeCommit and TypeAbort): it names the staged epoch to flip to or
// discard.
type Commit struct {
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
	// Term fences the decision exactly like ConfigDTO.Term fences pushes.
	Term uint64 `json:"term,omitempty"`
}

// LeaseRequest is a candidate's term-scoped bid for leadership.
// (LastTerm, JournalBytes) is the candidate's up-to-date mark — Raft's
// criterion: LastTerm is the term of the leader that last verifiably
// extended the candidate's journal, JournalBytes its intact length. A
// voter refuses the lease unless the candidate's pair is
// lexicographically >= its own. Length alone is not enough: a deposed
// leader's un-acked tail can be longer than a newer leader's
// quorum-acked journal, and electing it would lose acked records.
type LeaseRequest struct {
	Candidate    int    `json:"candidate"`
	Term         uint64 `json:"term"`
	JournalBytes int64  `json:"journal_bytes"`
	LastTerm     uint64 `json:"last_term,omitempty"`
}

// LeaseGrant answers a LeaseRequest. Term echoes the voter's term (the
// request's term if granted; the voter's higher term on refusal, which
// deposes the candidate).
type LeaseGrant struct {
	Voter   int    `json:"voter"`
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

// Heartbeat refreshes a leader's lease. JournalBytes is the leader's
// durable journal length: a standby that is behind it requests catch-up
// with a JournalFetch. Followers answer with a Heartbeat of their own
// (Leader echoing the sender) so the leader can count live followers and
// self-depose when it loses its quorum — the lease half of the
// split-brain argument (DESIGN §11).
type Heartbeat struct {
	Leader       int    `json:"leader"`
	Term         uint64 `json:"term"`
	JournalBytes int64  `json:"journal_bytes"`
	// JournalCRC is the running CRC-32 (IEEE) over the sender's whole
	// intact journal. A standby whose length matches the leader's but
	// whose CRC does not has a diverged prefix (records a dead leader
	// streamed that never reached a quorum) and resyncs from scratch.
	JournalCRC uint32 `json:"journal_crc,omitempty"`
	// Reply marks a follower's answer to a leader heartbeat (Leader then
	// names the follower itself).
	Reply bool `json:"reply,omitempty"`
}

// NotLeader bounces an agent off a non-leader replica, naming the
// current leader's management address when known ("" = unknown, try the
// next address in the agent's rotation).
type NotLeader struct {
	LeaderAddr string `json:"leader_addr,omitempty"`
	Term       uint64 `json:"term,omitempty"`
}

// JournalFrame carries raw write-ahead journal records (the on-disk
// length+CRC32 framing, unchanged) from the leader to a standby. Offset
// is the byte position of the first frame in the leader's journal; a
// standby applies the batch only when Offset equals its own journal
// length, preserving the prefix invariant.
type JournalFrame struct {
	Leader int    `json:"leader"`
	Term   uint64 `json:"term"`
	Offset int64  `json:"offset"`
	// PrefixCRC is the running CRC-32 (IEEE) over the leader's journal
	// bytes [0, Offset). A standby applies the batch only when the CRC
	// over its own journal matches — proof that its journal IS the
	// leader's prefix. Without it, a shorter-but-diverged standby (one
	// that applied a dead leader's un-acked tail) would fetch from its own
	// length, which is generally not a frame boundary in the leader's
	// journal, and loop forever on undecodable chunks; the mismatch
	// instead triggers a full resync from offset zero.
	PrefixCRC uint32 `json:"prefix_crc,omitempty"`
	Frames    []byte `json:"frames"`
}

// JournalFetch asks the leader for journal records from a byte offset —
// the standby catch-up path after a gap or a fresh join.
type JournalFetch struct {
	Standby int   `json:"standby"`
	From    int64 `json:"from"`
}

// JournalAck reports a standby's durable journal length after applying
// (or refusing) a frame batch. Term is the fence term the standby
// verified its journal against — the frame's term after a prefix-checked
// apply, or the standby's own higher fence on a stale refusal. The
// leader's quorum accounting counts only acks whose Term equals its own:
// a refused stale frame still produces an ack, and under a newer leader
// that ack's length can name different bytes, so it must never satisfy
// this leader's stream-before-ack gate.
type JournalAck struct {
	Standby int    `json:"standby"`
	Term    uint64 `json:"term"`
	Bytes   int64  `json:"bytes"`
}

// MeasureRow is one traffic measurement bucket (§III-C's T_{s,d,p}).
type MeasureRow struct {
	PolicyID  int   `json:"policy_id"`
	SrcSubnet int   `json:"src"`
	DstSubnet int   `json:"dst"`
	Packets   int64 `json:"packets"`
}

// Measure carries a proxy's measurement report.
type Measure struct {
	NodeID int          `json:"node_id"`
	Rows   []MeasureRow `json:"rows"`
}

// EncodeEnvelope marshals a typed message into the envelope payload used
// on the wire (the bytes after the length prefix). The controller's
// write-ahead journal reuses it so journal records and wire messages
// share one codec.
func EncodeEnvelope(typ string, v interface{}) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("mgmt: marshal %s: %w", typ, err)
	}
	env, err := json.Marshal(Envelope{T: typ, Data: data})
	if err != nil {
		return nil, fmt.Errorf("mgmt: marshal envelope: %w", err)
	}
	return env, nil
}

// DecodeEnvelope is EncodeEnvelope's inverse.
func DecodeEnvelope(buf []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return nil, fmt.Errorf("mgmt: bad envelope: %w", err)
	}
	return &env, nil
}

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, typ string, v interface{}) error {
	env, err := EncodeEnvelope(typ, v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(env)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(env)
	return err
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("mgmt: bad frame size %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return DecodeEnvelope(buf)
}

// ConfigToDTO serializes an enforce.Config for the wire.
func ConfigToDTO(seq uint64, cfg enforce.Config) ConfigDTO {
	dto := ConfigDTO{
		Seq:            seq,
		Strategy:       int(cfg.Strategy),
		HashSeed:       cfg.HashSeed,
		LabelSwitching: cfg.LabelSwitching,
		FlowTTL:        cfg.FlowTTL,
		LabelTTL:       cfg.LabelTTL,
		UseTrie:        cfg.UseTrie,
	}
	for _, p := range cfg.Policies {
		dto.Policies = append(dto.Policies, policyToDTO(p))
	}
	for f, nodes := range cfg.Candidates {
		cd := CandidateDTO{Func: int(f)}
		for _, n := range nodes {
			cd.Nodes = append(cd.Nodes, int(n))
		}
		dto.Candidates = append(dto.Candidates, cd)
	}
	dto.Weights = weightsToDTO(cfg.Weights)
	return dto
}

func weightsToDTO(w map[enforce.WeightKey][]float64) []WeightDTO {
	var out []WeightDTO
	for k, v := range w {
		out = append(out, WeightDTO{
			PolicyID: k.PolicyID, Func: int(k.Func),
			SrcSubnet: k.SrcSubnet, DstSubnet: k.DstSubnet,
			Weights: v,
		})
	}
	return out
}

// WeightsToDTO serializes a solved weight map for a weights-only push.
func WeightsToDTO(seq uint64, w map[enforce.WeightKey][]float64) ConfigDTO {
	return ConfigDTO{Seq: seq, WeightsOnly: true, Weights: weightsToDTO(w)}
}

// ConfigFromDTO reconstructs an enforce.Config from the wire form.
func ConfigFromDTO(dto ConfigDTO) (enforce.Config, error) {
	cfg := enforce.Config{
		Strategy:       enforce.Strategy(dto.Strategy),
		HashSeed:       dto.HashSeed,
		LabelSwitching: dto.LabelSwitching,
		FlowTTL:        dto.FlowTTL,
		LabelTTL:       dto.LabelTTL,
		UseTrie:        dto.UseTrie,
	}
	for _, pd := range dto.Policies {
		cfg.Policies = append(cfg.Policies, policyFromDTO(pd))
	}
	if len(dto.Candidates) > 0 {
		cfg.Candidates = make(map[policy.FuncType][]topo.NodeID, len(dto.Candidates))
		for _, cd := range dto.Candidates {
			nodes := make([]topo.NodeID, len(cd.Nodes))
			for i, n := range cd.Nodes {
				nodes[i] = topo.NodeID(n)
			}
			cfg.Candidates[policy.FuncType(cd.Func)] = nodes
		}
	}
	cfg.Weights = WeightsFromDTO(dto.Weights)
	return cfg, nil
}

// policyToDTO and policyFromDTO are the lossless per-policy codec shared
// by full-config and delta pushes.
func policyToDTO(p *policy.Policy) PolicyDTO {
	pd := PolicyDTO{
		ID: p.ID, Prio: p.Prio,
		SrcAddr: uint32(p.Desc.Src.Addr()), SrcBits: p.Desc.Src.Bits(),
		DstAddr: uint32(p.Desc.Dst.Addr()), DstBits: p.Desc.Dst.Bits(),
		SrcPortLo: p.Desc.SrcPort.Lo, SrcPortHi: p.Desc.SrcPort.Hi,
		DstPortLo: p.Desc.DstPort.Lo, DstPortHi: p.Desc.DstPort.Hi,
		Proto: p.Desc.Proto,
	}
	for _, a := range p.Actions {
		pd.Actions = append(pd.Actions, int(a))
	}
	return pd
}

func policyFromDTO(pd PolicyDTO) *policy.Policy {
	desc := policy.Descriptor{
		Src:     netaddr.PrefixFrom(netaddr.Addr(pd.SrcAddr), pd.SrcBits),
		Dst:     netaddr.PrefixFrom(netaddr.Addr(pd.DstAddr), pd.DstBits),
		SrcPort: netaddr.PortRange{Lo: pd.SrcPortLo, Hi: pd.SrcPortHi},
		DstPort: netaddr.PortRange{Lo: pd.DstPortLo, Hi: pd.DstPortHi},
		Proto:   pd.Proto,
	}
	actions := make(policy.ActionList, len(pd.Actions))
	for i, a := range pd.Actions {
		actions[i] = policy.FuncType(a)
	}
	return &policy.Policy{ID: pd.ID, Prio: pd.Prio, Desc: desc, Actions: actions}
}

// WeightsFromDTO reconstructs a weight map.
func WeightsFromDTO(rows []WeightDTO) map[enforce.WeightKey][]float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make(map[enforce.WeightKey][]float64, len(rows))
	for _, wd := range rows {
		out[enforce.WeightKey{
			PolicyID: wd.PolicyID, Func: policy.FuncType(wd.Func),
			SrcSubnet: wd.SrcSubnet, DstSubnet: wd.DstSubnet,
		}] = wd.Weights
	}
	return out
}
