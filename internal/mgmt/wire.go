// Package mgmt implements the management channel of the paper's
// architecture (§III-A): the centralized controller configures
// software-defined middleboxes and policy proxies over the network, and
// the proxies report their traffic measurements back (§III-C). Messages
// are length-prefixed JSON over TCP; agents embed in the live runtime's
// devices and apply configuration inside each device's own goroutine.
//
// This is the piece that makes the controller "software-defined" rather
// than in-process: the same enforce.Config that unit tests install
// directly travels here as a wire message.
package mgmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// maxFrame bounds a message frame (a Waxman-scale config with hundreds
// of policies fits comfortably).
const maxFrame = 16 << 20

// Envelope wraps every wire message with its type tag.
type Envelope struct {
	T    string          `json:"t"`
	Data json.RawMessage `json:"data"`
}

// Message type tags.
const (
	TypeHello = "hello"
	// TypeHelloAck confirms a HELLO: the server has registered this
	// connection as the node's current one. Agents block their handshake
	// on it, so "agent connected" implies "pushes route here" — without
	// it, a push racing a reconnect can land on the dying predecessor
	// connection.
	TypeHelloAck = "hello-ack"
	TypeConfig   = "config"
	TypeAck      = "ack"
	TypeMeasure  = "measure"
	// TypePrepare / TypeCommit / TypeAbort are the epoch-fenced two-phase
	// rollout (twophase.go): prepare carries a ConfigDTO the agent stages
	// without applying; commit atomically flips the node to the staged
	// plan; abort discards it after a prepare-quorum failure.
	TypePrepare = "prepare"
	TypeCommit  = "commit"
	TypeAbort   = "abort"
)

// Hello announces an agent to the server. Epoch is the last
// configuration epoch the agent successfully applied (0 = never
// configured); a reconnecting agent reports it so the server can
// idempotently re-push the latest plan only when the agent is behind.
type Hello struct {
	NodeID int    `json:"node_id"`
	Name   string `json:"name"`
	Proxy  bool   `json:"proxy"`
	Epoch  uint64 `json:"epoch,omitempty"`
}

// PolicyDTO is a lossless wire form of one policy.
type PolicyDTO struct {
	ID        int    `json:"id"`
	Prio      int    `json:"prio"`
	SrcAddr   uint32 `json:"src_addr"`
	SrcBits   int    `json:"src_bits"`
	DstAddr   uint32 `json:"dst_addr"`
	DstBits   int    `json:"dst_bits"`
	SrcPortLo uint16 `json:"sp_lo"`
	SrcPortHi uint16 `json:"sp_hi"`
	DstPortLo uint16 `json:"dp_lo"`
	DstPortHi uint16 `json:"dp_hi"`
	Proto     uint8  `json:"proto"`
	Actions   []int  `json:"actions"`
}

// CandidateDTO is one candidate set M_x^e.
type CandidateDTO struct {
	Func  int   `json:"func"`
	Nodes []int `json:"nodes"`
}

// WeightDTO is one LB weight vector.
type WeightDTO struct {
	PolicyID  int       `json:"policy_id"`
	Func      int       `json:"func"`
	SrcSubnet int       `json:"src,omitempty"`
	DstSubnet int       `json:"dst,omitempty"`
	Weights   []float64 `json:"w"`
}

// ConfigDTO is a full node configuration push. Seq identifies one wire
// attempt (assigned per send); Epoch identifies the logical plan
// generation (assigned once per Push, monotonic across the server's
// lifetime) — a re-pushed plan keeps its epoch under a fresh seq, and
// agents apply each epoch at most once.
type ConfigDTO struct {
	Seq            uint64         `json:"seq"`
	Epoch          uint64         `json:"epoch,omitempty"`
	Strategy       int            `json:"strategy"`
	HashSeed       uint64         `json:"hash_seed"`
	LabelSwitching bool           `json:"label_switching"`
	FlowTTL        int64          `json:"flow_ttl"`
	LabelTTL       int64          `json:"label_ttl"`
	UseTrie        bool           `json:"use_trie"`
	Policies       []PolicyDTO    `json:"policies"`
	Candidates     []CandidateDTO `json:"candidates"`
	Weights        []WeightDTO    `json:"weights,omitempty"`
	// WeightsOnly applies only the weight vectors, preserving tables and
	// soft state (the §III-C periodic rebalance).
	WeightsOnly bool `json:"weights_only,omitempty"`
}

// Ack confirms (or refuses) a config push. Epoch echoes the config's
// epoch so the server's convergence record never regresses on a stale
// ack arriving late. Prepared marks phase-1 acks of the two-phase
// rollout: the plan is staged, not applied, so the server must not count
// the epoch as converged off such an ack.
type Ack struct {
	Seq      uint64 `json:"seq"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Error    string `json:"error,omitempty"`
	Prepared bool   `json:"prepared,omitempty"`
}

// Commit is the phase-2 decision message of the two-phase rollout
// (TypeCommit and TypeAbort): it names the staged epoch to flip to or
// discard.
type Commit struct {
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
}

// MeasureRow is one traffic measurement bucket (§III-C's T_{s,d,p}).
type MeasureRow struct {
	PolicyID  int   `json:"policy_id"`
	SrcSubnet int   `json:"src"`
	DstSubnet int   `json:"dst"`
	Packets   int64 `json:"packets"`
}

// Measure carries a proxy's measurement report.
type Measure struct {
	NodeID int          `json:"node_id"`
	Rows   []MeasureRow `json:"rows"`
}

// EncodeEnvelope marshals a typed message into the envelope payload used
// on the wire (the bytes after the length prefix). The controller's
// write-ahead journal reuses it so journal records and wire messages
// share one codec.
func EncodeEnvelope(typ string, v interface{}) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("mgmt: marshal %s: %w", typ, err)
	}
	env, err := json.Marshal(Envelope{T: typ, Data: data})
	if err != nil {
		return nil, fmt.Errorf("mgmt: marshal envelope: %w", err)
	}
	return env, nil
}

// DecodeEnvelope is EncodeEnvelope's inverse.
func DecodeEnvelope(buf []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return nil, fmt.Errorf("mgmt: bad envelope: %w", err)
	}
	return &env, nil
}

// writeMsg frames and writes one message.
func writeMsg(w io.Writer, typ string, v interface{}) error {
	env, err := EncodeEnvelope(typ, v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(env)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(env)
	return err
}

// readMsg reads one framed message.
func readMsg(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("mgmt: bad frame size %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return DecodeEnvelope(buf)
}

// ConfigToDTO serializes an enforce.Config for the wire.
func ConfigToDTO(seq uint64, cfg enforce.Config) ConfigDTO {
	dto := ConfigDTO{
		Seq:            seq,
		Strategy:       int(cfg.Strategy),
		HashSeed:       cfg.HashSeed,
		LabelSwitching: cfg.LabelSwitching,
		FlowTTL:        cfg.FlowTTL,
		LabelTTL:       cfg.LabelTTL,
		UseTrie:        cfg.UseTrie,
	}
	for _, p := range cfg.Policies {
		pd := PolicyDTO{
			ID: p.ID, Prio: p.Prio,
			SrcAddr: uint32(p.Desc.Src.Addr()), SrcBits: p.Desc.Src.Bits(),
			DstAddr: uint32(p.Desc.Dst.Addr()), DstBits: p.Desc.Dst.Bits(),
			SrcPortLo: p.Desc.SrcPort.Lo, SrcPortHi: p.Desc.SrcPort.Hi,
			DstPortLo: p.Desc.DstPort.Lo, DstPortHi: p.Desc.DstPort.Hi,
			Proto: p.Desc.Proto,
		}
		for _, a := range p.Actions {
			pd.Actions = append(pd.Actions, int(a))
		}
		dto.Policies = append(dto.Policies, pd)
	}
	for f, nodes := range cfg.Candidates {
		cd := CandidateDTO{Func: int(f)}
		for _, n := range nodes {
			cd.Nodes = append(cd.Nodes, int(n))
		}
		dto.Candidates = append(dto.Candidates, cd)
	}
	dto.Weights = weightsToDTO(cfg.Weights)
	return dto
}

func weightsToDTO(w map[enforce.WeightKey][]float64) []WeightDTO {
	var out []WeightDTO
	for k, v := range w {
		out = append(out, WeightDTO{
			PolicyID: k.PolicyID, Func: int(k.Func),
			SrcSubnet: k.SrcSubnet, DstSubnet: k.DstSubnet,
			Weights: v,
		})
	}
	return out
}

// WeightsToDTO serializes a solved weight map for a weights-only push.
func WeightsToDTO(seq uint64, w map[enforce.WeightKey][]float64) ConfigDTO {
	return ConfigDTO{Seq: seq, WeightsOnly: true, Weights: weightsToDTO(w)}
}

// ConfigFromDTO reconstructs an enforce.Config from the wire form.
func ConfigFromDTO(dto ConfigDTO) (enforce.Config, error) {
	cfg := enforce.Config{
		Strategy:       enforce.Strategy(dto.Strategy),
		HashSeed:       dto.HashSeed,
		LabelSwitching: dto.LabelSwitching,
		FlowTTL:        dto.FlowTTL,
		LabelTTL:       dto.LabelTTL,
		UseTrie:        dto.UseTrie,
	}
	for _, pd := range dto.Policies {
		desc := policy.Descriptor{
			Src:     netaddr.PrefixFrom(netaddr.Addr(pd.SrcAddr), pd.SrcBits),
			Dst:     netaddr.PrefixFrom(netaddr.Addr(pd.DstAddr), pd.DstBits),
			SrcPort: netaddr.PortRange{Lo: pd.SrcPortLo, Hi: pd.SrcPortHi},
			DstPort: netaddr.PortRange{Lo: pd.DstPortLo, Hi: pd.DstPortHi},
			Proto:   pd.Proto,
		}
		actions := make(policy.ActionList, len(pd.Actions))
		for i, a := range pd.Actions {
			actions[i] = policy.FuncType(a)
		}
		cfg.Policies = append(cfg.Policies, &policy.Policy{
			ID: pd.ID, Prio: pd.Prio, Desc: desc, Actions: actions,
		})
	}
	if len(dto.Candidates) > 0 {
		cfg.Candidates = make(map[policy.FuncType][]topo.NodeID, len(dto.Candidates))
		for _, cd := range dto.Candidates {
			nodes := make([]topo.NodeID, len(cd.Nodes))
			for i, n := range cd.Nodes {
				nodes[i] = topo.NodeID(n)
			}
			cfg.Candidates[policy.FuncType(cd.Func)] = nodes
		}
	}
	cfg.Weights = WeightsFromDTO(dto.Weights)
	return cfg, nil
}

// WeightsFromDTO reconstructs a weight map.
func WeightsFromDTO(rows []WeightDTO) map[enforce.WeightKey][]float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make(map[enforce.WeightKey][]float64, len(rows))
	for _, wd := range rows {
		out[enforce.WeightKey{
			PolicyID: wd.PolicyID, Func: policy.FuncType(wd.Func),
			SrcSubnet: wd.SrcSubnet, DstSubnet: wd.DstSubnet,
		}] = wd.Weights
	}
	return out
}
