package mgmt_test

import (
	"testing"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/live"
	"sdme/internal/metrics"
	"sdme/internal/mgmt"
	"sdme/internal/netaddr"
	"sdme/internal/topo"
	"sdme/internal/verify"
	"sdme/internal/workload"
)

// The acceptance bar for the incremental pipeline on the wire: a single
// policy edit on the campus topology must re-solve only the affected
// chain instances (scoped solve, dirty < total) and roll out as deltas
// costing no more than 10% of the bytes a full-config rollout costs —
// both asserted via the pipeline stats and the push-byte counters the
// server exports. The delta must land the fleet on exactly the
// configuration a from-scratch rebuild of the new plan produces.
func TestSinglePolicyEditDeltaRollout(t *testing.T) {
	bed, err := experiments.NewBed(experiments.Config{
		Topology:         "campus",
		Seed:             11,
		PoliciesPerClass: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
		Strategy: enforce.LoadBalanced,
		K:        bed.Cfg.K,
	})
	creg := metrics.NewRegistry(nil)
	ctl.SetMetrics(creg, nil)
	pipe := ctl.NewPipeline(controller.PipelineOptions{})

	demands := bed.GenerateDemands(6000)
	meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
	upd, err := pipe.Recompute(meas)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := ctl.BuildNodesFromPlan(upd.Plan)
	if err != nil {
		t.Fatal(err)
	}

	// Live substrate: every node becomes a device with an agent, and the
	// ONLY configuration channel is the management wire.
	rt := live.NewRuntime()
	defer rt.Close()
	server, err := mgmt.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	reg := metrics.NewRegistry(nil)
	server.SetMetrics(reg)

	devices := make(map[topo.NodeID]*live.Device, len(nodes))
	var ids []topo.NodeID
	for id, n := range nodes {
		dev, err := rt.AddDevice(n)
		if err != nil {
			t.Fatal(err)
		}
		devices[id] = dev
		agent, err := mgmt.NewAgent(dev, server.Addr(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
		ids = append(ids, id)
	}
	if !server.WaitConnected(5*time.Second, ids...) {
		t.Fatalf("agents did not connect: %v of %v", server.Connected(), ids)
	}

	pol := mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second}
	plans := make(map[topo.NodeID]mgmt.ConfigDTO, len(nodes))
	for id, n := range nodes {
		plans[id] = mgmt.ConfigToDTO(0, n.Config())
	}
	if _, err := server.PushAll2PC(plans, pol); err != nil {
		t.Fatalf("full rollout: %v", err)
	}
	fullBytes := reg.Counter(mgmt.MetricPushBytesFull).Value()
	if fullBytes == 0 {
		t.Fatal("full rollout counted no bytes")
	}

	// The single edit: a one-to-one policy (one source subnet, so only
	// one proxy and its chain's providers carry it) widens its service
	// port range. Its flows keep matching — the chain instance survives
	// with a new rule hash, which is exactly what must go dirty and
	// nothing else.
	var cp workload.ClassedPolicy
	for _, c := range bed.Classed {
		if c.Class == workload.OneToOne {
			cp = c
			break
		}
	}
	p := cp.Policy
	if p == nil {
		t.Fatal("bed generated no one-to-one policy")
	}
	d := p.Desc
	d.DstPort = netaddr.PortRange{Lo: cp.Service, Hi: cp.Service + 1}
	bed.Table.Update(p.ID, d, p.Actions)
	pipe.PolicyChanged(p.ID)

	meas = controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
	upd2, err := pipe.Recompute(meas)
	if err != nil {
		t.Fatal(err)
	}
	if !upd2.Stats.Solved || upd2.Stats.FullSolve {
		t.Fatalf("single edit did not take the scoped-solve path: %+v", upd2.Stats)
	}
	if upd2.Stats.Dirty == 0 || upd2.Stats.Dirty >= upd2.Stats.Instances {
		t.Fatalf("dirty set = %d of %d instances; want a proper subset",
			upd2.Stats.Dirty, upd2.Stats.Instances)
	}
	if got := creg.Gauge(controller.MetricPlanDeltaSize).Value(); got != float64(upd2.Stats.Delta.Total()) {
		t.Errorf("%s = %v, want %d", controller.MetricPlanDeltaSize, got, upd2.Stats.Delta.Total())
	}
	if creg.Counter(controller.MetricPlanChurn).Value() == 0 {
		t.Errorf("%s did not count the edit's delta entries", controller.MetricPlanChurn)
	}
	if len(upd2.Deltas) == 0 {
		t.Fatal("edit produced no per-node deltas")
	}
	if len(upd2.Deltas) >= len(nodes) {
		t.Errorf("edit produced deltas for all %d nodes; want only the affected subset", len(nodes))
	}

	if _, err := server.PushAllDelta2PC(upd2.Deltas, nil, pol); err != nil {
		t.Fatalf("delta rollout: %v", err)
	}
	if got := reg.Counter(mgmt.MetricDeltaFallbacks).Value(); got != 0 {
		t.Errorf("delta rollout fell back to full pushes %d times", got)
	}
	deltaBytes := reg.Counter(mgmt.MetricPushBytesDelta).Value()
	if deltaBytes == 0 {
		t.Fatal("delta rollout counted no bytes")
	}
	if deltaBytes*10 > fullBytes {
		t.Errorf("delta rollout cost %d bytes, more than 10%% of the %d-byte full rollout",
			deltaBytes, fullBytes)
	}
	t.Logf("full rollout %d bytes, delta rollout %d bytes (%.1f%%), %d/%d instances re-solved, %d/%d nodes touched",
		fullBytes, deltaBytes, 100*float64(deltaBytes)/float64(fullBytes),
		upd2.Stats.Dirty, upd2.Stats.Instances, len(upd2.Deltas), len(nodes))

	// The fleet must now hold exactly the new plan's configuration.
	rebuilt, err := ctl.BuildNodesFromPlan(upd2.Plan)
	if err != nil {
		t.Fatal(err)
	}
	applied := make(map[topo.NodeID]enforce.Config, len(devices))
	for id, dev := range devices {
		id := id
		dev.Do(func(n *enforce.Node) { applied[id] = n.Config() })
	}
	fullCfg := make(map[topo.NodeID]enforce.Config, len(rebuilt))
	for id, n := range rebuilt {
		fullCfg[id] = n.Config()
	}
	if viol := verify.CheckDeltaEquivalence(applied, fullCfg); len(viol) > 0 {
		t.Fatalf("fleet diverges from the rebuilt plan after delta rollout (%d violations), first: %v",
			len(viol), viol[0])
	}
}
