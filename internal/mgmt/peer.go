package mgmt

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// PeerBus is the live-substrate transport between controller replicas:
// election and journal-replication envelopes ride the same wire format
// as the management channel, over a dedicated listener per replica.
// Sends are best-effort — a failed dial or write drops the cached
// connection and returns the error; the election protocol retries by
// timeout and replication by heartbeat-driven catch-up, so the bus
// never needs its own retry machinery.
//
// The sim substrate does not use PeerBus; it delivers envelopes through
// the engine's event queue on virtual time (sim.ControllerGroup).
type PeerBus struct {
	id     int
	l      net.Listener
	onRecv func(env *Envelope)

	mu      sync.Mutex
	peers   map[int]string // replica id -> bus address
	conns   map[int]net.Conn
	inbound []net.Conn
	closed  bool

	wg sync.WaitGroup
}

// NewPeerBus starts a replica's bus listening on addr ("127.0.0.1:0"
// for tests). onRecv is called on a reader goroutine for every envelope
// from any peer; wire the replica's Deliver here. Call SetPeers once
// every replica's address is known.
func NewPeerBus(id int, addr string, onRecv func(env *Envelope)) (*PeerBus, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mgmt: peer bus listen: %w", err)
	}
	b := &PeerBus{
		id:     id,
		l:      l,
		onRecv: onRecv,
		peers:  make(map[int]string),
		conns:  make(map[int]net.Conn),
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the bus's listen address for the other replicas.
func (b *PeerBus) Addr() string { return b.l.Addr().String() }

// SetPeers installs (or replaces) the replica address map.
func (b *PeerBus) SetPeers(addrs map[int]string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.peers = make(map[int]string, len(addrs))
	for id, a := range addrs {
		b.peers[id] = a
	}
}

// Send carries one envelope to a peer replica, dialing lazily and
// caching the connection. Implements controller.PeerTransport.
func (b *PeerBus) Send(to int, env *Envelope) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("mgmt: peer bus closed")
	}
	conn := b.conns[to]
	if conn == nil {
		addr, ok := b.peers[to]
		if !ok {
			b.mu.Unlock()
			return fmt.Errorf("mgmt: no address for replica %d", to)
		}
		var err error
		// A dead replica fails the dial quickly; the election tolerates
		// the bounded stall (its timeouts are an order larger).
		//vet:ignore lockedblocking -- lazy dial under the bus lock keeps send ordering per peer; bounded by the dial timeout
		conn, err = net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err != nil {
			b.mu.Unlock()
			return fmt.Errorf("mgmt: dial replica %d: %w", to, err)
		}
		b.conns[to] = conn
	}
	// Frame writes stay under the bus lock so concurrent senders (the
	// elector's timers, the replicator's append hook) never interleave
	// partial frames on one connection.
	//vet:ignore lockedblocking -- bus lock serializes frames per peer connection by design
	err := writeMsg(conn, env.T, env.Data)
	if err != nil {
		delete(b.conns, to)
		_ = conn.Close()
	}
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("mgmt: send to replica %d: %w", to, err)
	}
	return nil
}

// Close shuts the bus down: the listener, every cached outbound
// connection, and every inbound reader.
func (b *PeerBus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	conns := make([]net.Conn, 0, len(b.conns)+len(b.inbound))
	for _, c := range b.conns {
		conns = append(conns, c)
	}
	conns = append(conns, b.inbound...)
	b.mu.Unlock()
	_ = b.l.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	b.wg.Wait()
}

func (b *PeerBus) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.l.Accept()
		if err != nil {
			return // listener closed
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			_ = conn.Close()
			return
		}
		b.inbound = append(b.inbound, conn)
		b.mu.Unlock()
		b.wg.Add(1)
		go b.readLoop(conn)
	}
}

// readLoop delivers every envelope from one peer connection. Envelope
// payloads are validated by the receiving handler (Elector.Deliver /
// HAReplica.Deliver), not here — the bus is a dumb pipe.
func (b *PeerBus) readLoop(conn net.Conn) {
	defer b.wg.Done()
	for {
		env, err := readMsg(conn)
		if err != nil {
			return
		}
		b.onRecv(env)
	}
}
