package mgmt_test

import (
	"errors"
	"testing"
	"time"

	"sdme/internal/live"
	"sdme/internal/mgmt"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/topo"
	"sdme/internal/verify"
)

// fleetViews snapshots every node's (epoch, installed config) for the
// cross-node plan-consistency invariant.
func (b *mgmtBed) fleetViews() map[topo.NodeID]verify.NodePlanView {
	views := make(map[topo.NodeID]verify.NodePlanView, len(b.agents))
	for id, a := range b.agents {
		views[id] = verify.ViewOf(a.LastEpoch(), b.nodes[id].Config())
	}
	return views
}

// plansFor builds each node's controller-computed plan as a DTO batch.
func (b *mgmtBed) plansFor() map[topo.NodeID]mgmt.ConfigDTO {
	plans := make(map[topo.NodeID]mgmt.ConfigDTO, len(b.nodes))
	for id, n := range b.nodes {
		plans[id] = mgmt.ConfigToDTO(0, n.Config())
	}
	return plans
}

func TestTwoPhasePushAllCommits(t *testing.T) {
	b := newMgmtBed(t, 0)
	epoch, err := b.server.PushAll2PC(b.plansFor(), mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second})
	if err != nil {
		t.Fatalf("2pc push: %v", err)
	}
	if epoch == 0 {
		t.Fatal("2pc push returned zero epoch")
	}
	for id, a := range b.agents {
		if got := a.LastEpoch(); got != epoch {
			t.Errorf("node %v on epoch %d, want %d", id, got, epoch)
		}
		st := a.Stats()
		if st.Prepared < 1 || st.Committed < 1 {
			t.Errorf("node %v: prepared=%d committed=%d, want >=1 each", id, st.Prepared, st.Committed)
		}
		if se := a.StagedEpoch(); se != 0 {
			t.Errorf("node %v still holds staged epoch %d after commit", id, se)
		}
	}
	if !b.server.Converged() {
		t.Error("server not converged after full 2pc commit")
	}

	// The committed plan actually enforces: a chain flow traverses it.
	proxyID, _ := b.dep.ProxyFor(1)
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 1),
		SrcPort: 47100, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
	if err := b.rt.Inject(b.dep.AddrOf(proxyID), packet.New(ft, 24)); err != nil {
		t.Fatal(err)
	}
	if !live.WaitUntil(3*time.Second, func() bool { return b.sink.Received() >= 1 }) {
		t.Fatal("flow did not traverse the 2pc-committed plan")
	}
}

// A prepare refusal anywhere must leave EVERY node on its previous plan:
// the failed epoch is rolled back, nothing is half-deployed, and no two
// nodes disagree about the running epoch.
func TestTwoPhaseAbortOnPrepareFailureNeverMixesPlans(t *testing.T) {
	b := newMgmtBed(t, 0)

	// Establish a committed baseline epoch first.
	base, err := b.server.PushAll2PC(b.plansFor(), mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second})
	if err != nil {
		t.Fatalf("baseline 2pc: %v", err)
	}

	// Next generation: one node's plan is garbage (unknown strategy), so
	// its prepare is refused and the whole batch must roll back.
	plans := b.plansFor()
	victim := b.dep.MBNodes[0]
	bad := plans[victim]
	bad.Strategy = 99
	plans[victim] = bad

	_, err = b.server.PushAll2PC(plans, mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second})
	if err == nil {
		t.Fatal("2pc with an invalid plan committed")
	}
	var refused *mgmt.RefusedError
	if !errors.As(err, &refused) {
		t.Errorf("prepare failure should surface the agent's refusal, got %v", err)
	}

	for id, a := range b.agents {
		if got := a.LastEpoch(); got != base {
			t.Errorf("node %v on epoch %d after rollback, want baseline %d", id, got, base)
		}
		if se := a.StagedEpoch(); se != 0 {
			t.Errorf("node %v kept staged epoch %d after abort", id, se)
		}
	}
	// At least one healthy node staged and then discarded the plan.
	var aborted int64
	for _, a := range b.agents {
		aborted += a.Stats().Aborted
	}
	if aborted == 0 {
		t.Error("no agent recorded an abort — rollback never reached the staged nodes")
	}
}

// A reconnect re-push (plain config at the committed epoch) overtaking a
// late prepare retry must win: prepare for an epoch the agent already
// applied acks idempotently and stages nothing.
func TestTwoPhasePrepareAfterApplyIsIdempotent(t *testing.T) {
	b := newMgmtBed(t, 0)
	epoch, err := b.server.PushAll2PC(b.plansFor(), mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the same generation: every prepare hits the already-applied
	// fence... but PushAll2PC always mints a fresh epoch, so drive one
	// node directly through Push with the committed epoch instead.
	node := b.dep.MBNodes[0]
	dto := mgmt.ConfigToDTO(0, b.nodes[node].Config())
	dto.Epoch = epoch
	if err := b.server.Push(node, dto, 3*time.Second); err != nil {
		t.Fatalf("re-push at committed epoch: %v", err)
	}
	a := b.agents[node]
	if got := a.LastEpoch(); got != epoch {
		t.Errorf("epoch regressed to %d", got)
	}
	if a.Stats().StaleConfigs == 0 {
		t.Error("re-push at applied epoch was not treated as stale")
	}
	if se := a.StagedEpoch(); se != 0 {
		t.Errorf("idempotent path staged epoch %d", se)
	}
}

// Successive 2PC generations advance the fleet monotonically.
func TestTwoPhaseSuccessiveGenerations(t *testing.T) {
	b := newMgmtBed(t, 0)
	pol := mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second}
	e1, err := b.server.PushAll2PC(b.plansFor(), pol)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := b.server.PushAll2PC(b.plansFor(), pol)
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("epochs not monotonic: %d then %d", e1, e2)
	}
	for id, a := range b.agents {
		if got := a.LastEpoch(); got != e2 {
			t.Errorf("node %v on epoch %d, want %d", id, got, e2)
		}
	}
}

// The plan-consistency invariant over a real fleet: clean after an
// epoch-fenced batch, and flagging the exact divergent node after a
// deliberately partial plain push — the failure mode 2PC exists to
// prevent.
func TestTwoPhaseFleetPlanConsistency(t *testing.T) {
	b := newMgmtBed(t, 0)
	if _, err := b.server.PushAll2PC(b.plansFor(), mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if v := verify.CheckConsistency(b.fleetViews()); len(v) != 0 {
		t.Fatalf("consistent fleet flagged: %v", v)
	}

	// Push a lone node forward with a plain (unfenced) config: the fleet
	// now mixes generations, and the checker must say which node.
	node := b.dep.MBNodes[0]
	dto := mgmt.ConfigToDTO(0, b.nodes[node].Config())
	if err := b.server.PushRetry(node, dto, mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	viol := verify.CheckConsistency(b.fleetViews())
	if len(viol) == 0 {
		t.Fatal("mixed-epoch fleet passed the consistency check")
	}
	for _, v := range viol {
		if v.Invariant != verify.InvConsistency {
			t.Errorf("violation %v not tagged %v", v, verify.InvConsistency)
		}
	}
}

// Killing an agent before commit: the batch's commit phase reports a
// straggler, but the plan is recorded as latest, so the rejoining agent
// is caught up by the reconnect re-push and the fleet converges anyway.
func TestTwoPhaseCommitStragglerHealsViaReconnect(t *testing.T) {
	b := newMgmtBed(t, 0)
	pol := mgmt.RetryPolicy{Attempts: 2, PerAttempt: 3 * time.Second}
	base, err := b.server.PushAll2PC(b.plansFor(), pol)
	if err != nil {
		t.Fatal(err)
	}

	// Drop one agent entirely. Prepare cannot reach it, so this generation
	// rolls back; that is the fenced behavior — no node moves.
	node := b.dep.MBNodes[0]
	b.agents[node].Close()
	delete(b.agents, node)
	b.server.DropConn(node)

	if _, err := b.server.PushAll2PC(b.plansFor(), mgmt.RetryPolicy{Attempts: 1, PerAttempt: time.Second}); err == nil {
		t.Fatal("2pc committed with a dead member")
	}
	for id, a := range b.agents {
		if got := a.LastEpoch(); got != base {
			t.Errorf("node %v moved to epoch %d while fleet was partial", id, got)
		}
	}

	// Rejoin and run the next generation: everyone lands on it together.
	agent, err := mgmt.NewAgent(b.devices[node], b.server.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b.agents[node] = agent
	if !b.server.WaitConnected(3*time.Second, node) {
		t.Fatal("agent did not rejoin")
	}
	next, err := b.server.PushAll2PC(b.plansFor(), pol)
	if err != nil {
		t.Fatalf("2pc after rejoin: %v", err)
	}
	if !live.WaitUntil(3*time.Second, func() bool {
		for _, a := range b.agents {
			if a.LastEpoch() != next {
				return false
			}
		}
		return true
	}) {
		t.Fatal("fleet did not converge on the post-rejoin generation")
	}
}
