package mgmt_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sdme/internal/mgmt"
)

// TestTermFenceRefusesStalePush: an agent that has seen a plan from term
// 5 must refuse a later push carrying term 3 outright — a *RefusedError,
// not an idempotent ack — even though the push carries a fresh epoch.
// That refusal is how a deposed leader that somehow still holds a live
// connection learns it lost (split-brain fencing, DESIGN §11).
func TestTermFenceRefusesStalePush(t *testing.T) {
	b := newMgmtBed(t, 0)
	b.server.SetLeader(5)
	b.pushAll(t)

	node := b.dep.MBNodes[0]
	agent := b.agents[node]
	if got := agent.LastTerm(); got != 5 {
		t.Fatalf("agent term = %d after a term-5 push, want 5", got)
	}
	applies0 := agent.Stats().Applies

	// A deposed leader's push: explicit stale term, fresh epoch. PushRetry
	// preserves both, so the only thing standing between this plan and the
	// device is the agent-side fence.
	stale := mgmt.ConfigToDTO(0, b.nodes[node].Config())
	stale.Term = 3
	err := b.server.PushRetry(node, stale, mgmt.RetryPolicy{Attempts: 1, PerAttempt: 3 * time.Second})
	var refused *mgmt.RefusedError
	if !errors.As(err, &refused) {
		t.Fatalf("stale-term push returned %v, want a *RefusedError", err)
	}
	if !strings.Contains(refused.Reason, "stale term") {
		t.Fatalf("refusal reason %q does not name the stale term", refused.Reason)
	}
	st := agent.Stats()
	if st.Applies != applies0 {
		t.Fatalf("stale-term plan reached the device: applies %d -> %d", applies0, st.Applies)
	}
	if st.StaleTerms < 1 {
		t.Fatalf("stale-term counter not bumped: %+v", st)
	}
	if got := agent.LastTerm(); got != 5 {
		t.Fatalf("stale push moved the agent's term to %d", got)
	}

	// The legitimate successor (term 6) still gets through.
	b.server.SetLeader(6)
	next := mgmt.ConfigToDTO(0, b.nodes[node].Config())
	if err := b.server.Push(node, next, 3*time.Second); err != nil {
		t.Fatalf("term-6 push after the fence: %v", err)
	}
	if got := agent.LastTerm(); got != 6 {
		t.Fatalf("agent term = %d after a term-6 push, want 6", got)
	}
	if got := agent.Stats().Applies; got != applies0+1 {
		t.Fatalf("term-6 plan applied %d times, want exactly 1", got-applies0)
	}
}

// TestNotLeaderRedirectAndRotation: an agent configured with the whole
// replica set re-homes to whichever replica leads — first by following a
// NotLeader redirect from a standby at connect time, then again after
// the leadership (and its bounce) moves the other way.
func TestNotLeaderRedirectAndRotation(t *testing.T) {
	b := newMgmtBed(t, 0)
	node := b.dep.MBNodes[0]
	b.agents[node].Close()

	serverB, err := mgmt.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(serverB.Close)

	// Replica A (the bed server) is a standby that knows the leader; B leads.
	b.server.SetNotLeader(serverB.Addr())
	serverB.SetLeader(1)

	agent, err := mgmt.NewAgentWith(b.devices[node], b.server.Addr(), mgmt.AgentOptions{
		Addrs:      []string{b.server.Addr(), serverB.Addr()},
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("agent never reached the leader through the redirect: %v", err)
	}
	b.agents[node] = agent
	if !serverB.WaitConnected(3*time.Second, node) {
		t.Fatal("agent did not land on the leader")
	}
	if got := agent.Stats().Redirects; got < 1 {
		t.Fatalf("redirects = %d, want >= 1 (dial order starts at the standby)", got)
	}

	// Leadership moves back to A. B deposes itself, bounces to A, and cuts
	// its connections; the homed agent must follow without being rebuilt.
	b.server.SetLeader(2)
	serverB.SetNotLeader(b.server.Addr())
	serverB.DropAllConns()

	if !b.server.WaitConnected(5*time.Second, node) {
		t.Fatalf("agent did not re-home to the new leader: %+v", agent.Stats())
	}
	st := agent.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("re-homing without a reconnect? %+v", st)
	}
	if st.Redirects < 2 {
		t.Fatalf("redirects = %d, want >= 2 (one per leadership move)", st.Redirects)
	}

	// And the new home is a working one: a push lands end to end.
	if err := b.server.Push(node, mgmt.ConfigToDTO(0, b.nodes[node].Config()), 3*time.Second); err != nil {
		t.Fatalf("push through the re-homed connection: %v", err)
	}
}
