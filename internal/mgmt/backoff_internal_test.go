package mgmt

import (
	"testing"
	"time"
)

// TestNextBackoffBase pins the reconnect-backoff reset rule: only a
// connection that survived HealthyPeriod earns the reset to BackoffMin;
// a flap keeps the grown delay (clamped to the configured bounds).
func TestNextBackoffBase(t *testing.T) {
	opts := AgentOptions{
		BackoffMin:    10 * time.Millisecond,
		BackoffMax:    2 * time.Second,
		HealthyPeriod: 500 * time.Millisecond,
	}
	cases := []struct {
		name     string
		prev     time.Duration
		connLife time.Duration
		want     time.Duration
	}{
		{"healthy connection resets to min", 800 * time.Millisecond, time.Second, 10 * time.Millisecond},
		{"exactly HealthyPeriod counts as healthy", 800 * time.Millisecond, 500 * time.Millisecond, 10 * time.Millisecond},
		{"flap keeps the grown delay", 800 * time.Millisecond, 20 * time.Millisecond, 800 * time.Millisecond},
		{"instant death keeps the grown delay", 160 * time.Millisecond, 0, 160 * time.Millisecond},
		{"flap clamps below min", 1 * time.Millisecond, 20 * time.Millisecond, 10 * time.Millisecond},
		{"flap clamps above max", 8 * time.Second, 20 * time.Millisecond, 2 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := opts.nextBackoffBase(tc.prev, tc.connLife); got != tc.want {
				t.Errorf("nextBackoffBase(%v, %v) = %v, want %v", tc.prev, tc.connLife, got, tc.want)
			}
		})
	}
}
