package mgmt_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"sdme/internal/faultinject"
	"sdme/internal/live"
	"sdme/internal/mgmt"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/topo"
)

// TestReconnectDeliversLatestEpochExactlyOnce is the satellite coverage
// for the self-healing channel: the server-side connection dies
// mid-stream, a new plan is pushed while the node is unreachable, and
// the reconnecting agent re-HELLOs, receives the latest-epoch config
// exactly once, and resumes measurement reporting.
func TestReconnectDeliversLatestEpochExactlyOnce(t *testing.T) {
	b := newMgmtBed(t, 20*time.Millisecond)
	b.server.SetRepushPolicy(mgmt.RetryPolicy{Attempts: 5, PerAttempt: time.Second, Backoff: 20 * time.Millisecond})
	b.pushAll(t)

	proxyID, _ := b.dep.ProxyFor(1)
	agent := b.agents[proxyID]
	applies0 := agent.Stats().Applies
	epoch0 := agent.LastEpoch()
	if epoch0 == 0 {
		t.Fatal("push did not stamp an epoch")
	}

	// Kill the server-side connection mid-stream.
	if !b.server.DropConn(proxyID) {
		t.Fatal("no connection to drop")
	}

	// While the node is unreachable, the controller pushes a new plan:
	// the wire attempt fails, but the plan is recorded as latest.
	err := b.server.Push(proxyID, mgmt.ConfigToDTO(0, b.nodes[proxyID].Config()), 100*time.Millisecond)
	if err == nil {
		t.Fatal("push to a dropped connection should fail") // reconnect can't be that fast: backoff min is 10ms and this races a fresh Push
	}
	latestEpoch := b.server.Epoch()
	if latestEpoch <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, latestEpoch)
	}

	// The agent heals itself: re-dials, re-HELLOs with its stale epoch,
	// and the server re-pushes the latest plan.
	if !live.WaitUntil(5*time.Second, func() bool {
		return b.server.AckedEpoch(proxyID) == latestEpoch
	}) {
		t.Fatalf("latest epoch never acked: acked=%d want=%d connected=%v",
			b.server.AckedEpoch(proxyID), latestEpoch, b.server.Connected())
	}
	st := agent.Stats()
	if st.Reconnects < 1 {
		t.Errorf("agent never reconnected: %+v", st)
	}
	if agent.LastEpoch() != latestEpoch {
		t.Errorf("agent epoch = %d, want %d", agent.LastEpoch(), latestEpoch)
	}
	// Exactly once: one apply for the initial config, one for the
	// re-pushed latest plan — no duplicate application of either epoch.
	if got := st.Applies - applies0; got != 1 {
		t.Errorf("latest-epoch config applied %d times, want exactly 1 (%+v)", got, st)
	}
	if !b.server.Converged(proxyID) {
		t.Error("server does not consider the node converged")
	}

	// Measurement reports resume on the new connection.
	before := b.measTotal()
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 9), Dst: topo.HostAddr(2, 1),
		SrcPort: 49100, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
	for i := 0; i < 5; i++ {
		if err := b.rt.Inject(b.dep.AddrOf(proxyID), packet.New(ft, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if !live.WaitUntil(5*time.Second, func() bool { return b.measTotal() >= before+5 }) {
		t.Fatalf("measurement reports did not resume after reconnect (total %d, want >= %d)",
			b.measTotal(), before+5)
	}
}

// TestReconnectNoRepushWhenCurrent: an agent that reconnects already
// holding the latest epoch gets nothing re-pushed — idempotence, not
// periodic flooding.
func TestReconnectNoRepushWhenCurrent(t *testing.T) {
	b := newMgmtBed(t, 0)
	b.pushAll(t)
	node := b.dep.MBNodes[0]
	agent := b.agents[node]
	applies0 := agent.Stats().Applies

	if !b.server.DropConn(node) {
		t.Fatal("no connection to drop")
	}
	if !live.WaitUntil(5*time.Second, func() bool { return agent.Stats().Reconnects >= 1 }) {
		t.Fatal("agent never reconnected")
	}
	if !b.server.WaitConnected(3*time.Second, node) {
		t.Fatal("reconnect did not register")
	}
	// Give a would-be re-push time to land, then assert none did.
	time.Sleep(100 * time.Millisecond)
	st := agent.Stats()
	if st.Applies != applies0 || st.StaleConfigs != 0 {
		t.Errorf("up-to-date agent got a re-push: %+v (applies0=%d)", st, applies0)
	}
}

// TestChaosPushRetryHealsAckLoss injects ack loss with the fault conn:
// the first attempt's config is applied but its ack vanishes; the retry
// of the same epoch is acked idempotently without a second apply.
func TestChaosPushRetryHealsAckLoss(t *testing.T) {
	b := newMgmtBed(t, 0)
	node := b.dep.MBNodes[0]
	// Replace the node's agent with one dialing through a fault tap.
	b.agents[node].Close()
	tap := &faultinject.ConnTap{}
	agent, err := mgmt.NewAgentWith(b.devices[node], b.server.Addr(), mgmt.AgentOptions{
		Dial: tap.Dial(func() (net.Conn, error) { return net.Dial("tcp", b.server.Addr()) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	b.agents[node] = agent
	if !b.server.WaitConnected(3*time.Second, node) {
		t.Fatal("fault-tapped agent did not connect")
	}

	tap.DropFrames(1) // the next frame the agent writes (the ack) vanishes
	start := time.Now()
	err = b.server.PushRetry(node, mgmt.ConfigToDTO(0, b.nodes[node].Config()), mgmt.RetryPolicy{
		Attempts: 3, PerAttempt: 300 * time.Millisecond, Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("push never survived ack loss: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Errorf("first attempt cannot have timed out in %v; was the ack really dropped?", elapsed)
	}
	st := agent.Stats()
	if st.Applies != 1 {
		t.Errorf("config applied %d times across retries, want exactly 1", st.Applies)
	}
	if st.StaleConfigs < 1 {
		t.Errorf("retry was not acked idempotently: %+v", st)
	}
	if dropped, _ := currentConnStats(tap); dropped < 1 {
		t.Errorf("fault conn dropped %d frames, want >= 1", dropped)
	}
}

// TestChaosPushFailsFastOnConnDeath: a push waiting on an ack must fail
// the moment the connection dies, not after the full timeout.
func TestChaosPushFailsFastOnConnDeath(t *testing.T) {
	b := newMgmtBed(t, 0)
	node := b.dep.MBNodes[0]
	b.agents[node].Close()
	tap := &faultinject.ConnTap{}
	agent, err := mgmt.NewAgentWith(b.devices[node], b.server.Addr(), mgmt.AgentOptions{
		Dial: tap.Dial(func() (net.Conn, error) { return net.Dial("tcp", b.server.Addr()) }),
		// Slow reconnects so the fail-fast window is unambiguous.
		BackoffMin: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.agents[node] = agent
	if !b.server.WaitConnected(3*time.Second, node) {
		t.Fatal("agent did not connect")
	}

	tap.DropFrames(8) // swallow acks: the push would wait its full budget
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- b.server.Push(node, mgmt.ConfigToDTO(0, b.nodes[node].Config()), 30*time.Second)
	}()
	time.Sleep(150 * time.Millisecond) // let the config land and its ack be eaten
	tap.DropConn()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("push succeeded with its ack dropped and conn dead")
		}
		if !errors.Is(err, mgmt.ErrConnClosed) {
			t.Errorf("err = %v, want ErrConnClosed", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("push took %v to notice the dead conn (timeout was 30s)", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("push waited out its timeout instead of failing fast")
	}
}

// TestPushWhileDisconnectedConvergesOnReconnect: pushing to a node with
// no connection fails with ErrNotConnected (without consuming wire
// state), yet the plan still reaches the node when its agent appears.
func TestPushWhileDisconnectedConvergesOnReconnect(t *testing.T) {
	b := newMgmtBed(t, 0)
	b.server.SetRepushPolicy(mgmt.RetryPolicy{Attempts: 5, PerAttempt: time.Second, Backoff: 20 * time.Millisecond})
	node := b.dep.MBNodes[0]
	b.agents[node].Close()
	if !live.WaitUntil(3*time.Second, func() bool {
		for _, id := range b.server.Connected() {
			if id == node {
				return false
			}
		}
		return true
	}) {
		t.Fatal("closed agent still registered")
	}

	err := b.server.Push(node, mgmt.ConfigToDTO(0, b.nodes[node].Config()), time.Second)
	if !errors.Is(err, mgmt.ErrNotConnected) {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
	latest := b.server.Epoch()

	agent, err := mgmt.NewAgent(b.devices[node], b.server.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b.agents[node] = agent
	if !live.WaitUntil(5*time.Second, func() bool { return b.server.AckedEpoch(node) == latest }) {
		t.Fatalf("stored plan never delivered on reconnect (acked %d, want %d)",
			b.server.AckedEpoch(node), latest)
	}
}

func (b *mgmtBed) measTotal() int64 {
	b.measMu.Lock()
	defer b.measMu.Unlock()
	var total int64
	for _, v := range b.meas {
		total += v
	}
	return total
}

func currentConnStats(tap *faultinject.ConnTap) (dropped, delayed int64) {
	// The tap tracks the live conn; stats accessor lives on the Conn.
	return tap.CurrentStats()
}
