package mgmt

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// The delta rollout's two safety rules are protocol behavior, so they
// are tested at the wire level with a scripted peer standing in for the
// agent: base fencing (a refused delta degrades to a full push of the
// merged configuration at the same epoch) and merge-at-store (reconnect
// catch-up always re-pushes a full merged configuration, never a delta
// chain, no matter how many delta epochs a node missed).

const fakeNode = topo.NodeID(7)

// dialFake connects a scripted agent to the server and completes the
// hello handshake, reporting the given applied epoch.
func dialFake(t *testing.T, addr string, epoch uint64) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(conn, TypeHello, Hello{NodeID: int(fakeNode), Name: "fake", Epoch: epoch}); err != nil {
		t.Fatal(err)
	}
	env, err := readMsg(conn)
	if err != nil || env.T != TypeHelloAck {
		t.Fatalf("handshake: %v %v", env, err)
	}
	return conn
}

// serveScript answers every envelope with handle's ack and records the
// envelope types seen, until the connection closes.
func serveScript(t *testing.T, conn net.Conn, seen chan<- *Envelope, handle func(env *Envelope) Ack) {
	for {
		env, err := readMsg(conn)
		if err != nil {
			return
		}
		ack := handle(env)
		if err := writeMsg(conn, TypeAck, ack); err != nil {
			return
		}
		seen <- env
	}
}

func seqEpochOf(t *testing.T, env *Envelope) (uint64, uint64) {
	t.Helper()
	var hdr struct {
		Seq   uint64 `json:"seq"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(env.Data, &hdr); err != nil {
		t.Fatalf("decode %s header: %v", env.T, err)
	}
	return hdr.Seq, hdr.Epoch
}

func TestPushDeltaRequiresFullBase(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	err = srv.PushDelta(fakeNode, seedDelta(), RetryPolicy{Attempts: 1, PerAttempt: time.Second})
	if !errors.Is(err, ErrNoBase) {
		t.Fatalf("delta push without a recorded base: err = %v, want ErrNoBase", err)
	}
}

func TestPushDeltaBaseMismatchFallsBackToFull(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := metrics.NewRegistry(nil)
	srv.SetMetrics(reg)

	conn := dialFake(t, srv.Addr(), 0)
	defer conn.Close()
	seen := make(chan *Envelope, 16)
	go serveScript(t, conn, seen, func(env *Envelope) Ack {
		seq, epoch := seqEpochOf(t, env)
		if env.T == TypeDelta {
			// Script the race the fallback exists for: the agent reports
			// an applied epoch other than the delta's base.
			return Ack{Seq: seq, Epoch: epoch, Error: RefuseDeltaBase + ": applied epoch 9, delta base 1"}
		}
		return Ack{Seq: seq, Epoch: epoch}
	})
	if !srv.WaitConnected(3*time.Second, fakeNode) {
		t.Fatal("fake agent not registered")
	}

	pol := RetryPolicy{Attempts: 1, PerAttempt: 3 * time.Second}
	if err := srv.PushRetry(fakeNode, ConfigToDTO(0, seedConfig()), pol); err != nil {
		t.Fatalf("full push: %v", err)
	}
	if err := srv.PushDelta(fakeNode, seedDelta(), pol); err != nil {
		t.Fatalf("delta push should fall back to full, got %v", err)
	}

	var types []string
	var last *Envelope
	for len(seen) > 0 {
		last = <-seen
		types = append(types, last.T)
	}
	want := []string{TypeConfig, TypeDelta, TypeConfig}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("wire sequence = %v, want %v", types, want)
	}
	// The fallback is the delta-merged full configuration at the delta's
	// epoch: the seed delta removes policy 2, so the merged config must
	// not carry it.
	var dto ConfigDTO
	if err := json.Unmarshal(last.Data, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Epoch != 2 {
		t.Errorf("fallback epoch = %d, want the delta's epoch 2", dto.Epoch)
	}
	for _, p := range dto.Policies {
		if p.ID == 2 {
			t.Errorf("fallback config still carries removed policy 2")
		}
	}
	if got := reg.Counter(MetricDeltaFallbacks).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricDeltaFallbacks, got)
	}
	if reg.Counter(MetricPushBytesDelta).Value() == 0 {
		t.Errorf("%s not counted", MetricPushBytesDelta)
	}
	if reg.Counter(MetricPushBytesFull).Value() == 0 {
		t.Errorf("%s not counted", MetricPushBytesFull)
	}
}

func TestDeltaReconnectCatchupPushesMergedFull(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn := dialFake(t, srv.Addr(), 0)
	seen := make(chan *Envelope, 16)
	go serveScript(t, conn, seen, func(env *Envelope) Ack {
		seq, epoch := seqEpochOf(t, env)
		return Ack{Seq: seq, Epoch: epoch}
	})
	if !srv.WaitConnected(3*time.Second, fakeNode) {
		t.Fatal("fake agent not registered")
	}
	pol := RetryPolicy{Attempts: 1, PerAttempt: 3 * time.Second}
	if err := srv.PushRetry(fakeNode, ConfigToDTO(0, seedConfig()), pol); err != nil {
		t.Fatalf("full push: %v", err)
	}
	<-seen // the config envelope

	// The node goes dark; two delta epochs are minted against it and both
	// fail on the wire. Merge-at-store still advanced the recorded latest
	// plan to the merged full configuration each time.
	_ = conn.Close()
	short := RetryPolicy{Attempts: 1, PerAttempt: 200 * time.Millisecond}
	d1 := enforce.ConfigDelta{Removes: []int{2}}
	d2 := enforce.ConfigDelta{SetWeights: map[enforce.WeightKey][]float64{
		{PolicyID: 1, Func: policy.FuncFW}: {0.25, 0.75},
	}}
	if err := srv.PushDelta(fakeNode, d1, short); err == nil {
		t.Fatal("delta push to a dark node should fail")
	}
	if err := srv.PushDelta(fakeNode, d2, short); err == nil {
		t.Fatal("delta push to a dark node should fail")
	}

	// Reconnect reporting the last applied epoch (1). Catch-up must send
	// ONE full config at the newest epoch with both deltas folded in — a
	// node is never asked to replay a delta chain.
	conn2 := dialFake(t, srv.Addr(), 1)
	defer conn2.Close()
	go serveScript(t, conn2, seen, func(env *Envelope) Ack {
		seq, epoch := seqEpochOf(t, env)
		return Ack{Seq: seq, Epoch: epoch}
	})
	var env *Envelope
	select {
	case env = <-seen:
	case <-time.After(3 * time.Second):
		t.Fatal("no catch-up push after reconnect")
	}
	if env.T != TypeConfig {
		t.Fatalf("catch-up pushed %s, want %s", env.T, TypeConfig)
	}
	var dto ConfigDTO
	if err := json.Unmarshal(env.Data, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Epoch != 3 {
		t.Errorf("catch-up epoch = %d, want 3 (both delta epochs folded)", dto.Epoch)
	}
	for _, p := range dto.Policies {
		if p.ID == 2 {
			t.Errorf("catch-up config still carries policy 2 removed by the first delta")
		}
	}
	var w []float64
	for _, wd := range dto.Weights {
		if wd.PolicyID == 1 && wd.Func == int(policy.FuncFW) {
			w = wd.Weights
		}
	}
	if len(w) != 2 || w[0] != 0.25 || w[1] != 0.75 {
		t.Errorf("catch-up config missing the second delta's weights: %v", w)
	}
}
