// Package workload generates the synthetic policies and traffic of the
// paper's evaluation (§IV-A):
//
//   - three policy classes — many-to-one (protect a destination service:
//     FW → IDS), one-to-many (outbound web from one subnet:
//     FW → IDS → WP), and one-to-one (investigate a subnet pair:
//     IDS → TM);
//   - flows split evenly across the classes, with power-law (bounded
//     Pareto) sizes in [1, 5000] packets.
//
// The paper reports 30k–300k flows producing 1M–10M packets, i.e. a mean
// flow size near 33 packets; a bounded Pareto on [1, 5000] hits that mean
// at alpha ≈ 0.65, which is therefore the default shape parameter (the
// paper states only "power law"; this choice is recorded in DESIGN.md).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// Class labels the paper's three policy classes.
type Class int

// Policy classes (§IV-A).
const (
	ManyToOne Class = iota + 1
	OneToMany
	OneToOne
)

// String renders the class.
func (c Class) String() string {
	switch c {
	case ManyToOne:
		return "many-to-one"
	case OneToMany:
		return "one-to-many"
	case OneToOne:
		return "one-to-one"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Actions returns the class's action chain as used in the evaluation.
func (c Class) Actions() policy.ActionList {
	switch c {
	case ManyToOne:
		return policy.ActionList{policy.FuncFW, policy.FuncIDS}
	case OneToMany:
		return policy.ActionList{policy.FuncFW, policy.FuncIDS, policy.FuncWP}
	case OneToOne:
		return policy.ActionList{policy.FuncIDS, policy.FuncTM}
	default:
		return nil
	}
}

// ClassedPolicy pairs an installed policy with its generation metadata.
type ClassedPolicy struct {
	Policy *policy.Policy
	Class  Class
	// SrcSubnet/DstSubnet are 1-based subnet indexes; 0 means wildcard.
	SrcSubnet, DstSubnet int
	// Service is the destination port the policy constrains.
	Service uint16
}

// GenConfig parameterizes generation.
type GenConfig struct {
	// Subnets is the number of stub subnets (= policy proxies) in the
	// topology; subnet indexes are 1..Subnets.
	Subnets int
	// PoliciesPerClass is how many policies of each class to create.
	PoliciesPerClass int
	// SizeAlpha, SizeMin, SizeMax shape the bounded-Pareto flow sizes.
	// Zero values default to 0.65, 1 and 5000.
	SizeAlpha        float64
	SizeMin, SizeMax int
	// Companions adds, for each one-to-many web policy, the §IV-A
	// "many-to-one companion policy for the return web traffic":
	// wildcard-source traffic from port 80 back into the subnet,
	// traversing the same chain reversed.
	Companions bool
}

func (c *GenConfig) fill() {
	if c.SizeAlpha == 0 {
		c.SizeAlpha = 0.65
	}
	if c.SizeMin == 0 {
		c.SizeMin = 1
	}
	if c.SizeMax == 0 {
		c.SizeMax = 5000
	}
	if c.PoliciesPerClass == 0 {
		c.PoliciesPerClass = 10
	}
}

// webPort is the HTTP service used by one-to-many policies.
const webPort = 80

// randService picks an "arbitrary service" destination port.
func randService(rng *rand.Rand) uint16 {
	wellKnown := []uint16{22, 25, 53, 110, 143, 443, 993, 3306, 5432, 8080}
	return wellKnown[rng.Intn(len(wellKnown))]
}

// GeneratePolicies creates cfg.PoliciesPerClass policies of each class,
// installs them into tbl (in class-interleaved order) and returns the
// classed metadata. Destination/source subnets are chosen uniformly; a
// one-to-one policy always uses two distinct subnets.
func GeneratePolicies(cfg GenConfig, tbl *policy.Table, rng *rand.Rand) []ClassedPolicy {
	cfg.fill()
	if cfg.Subnets < 2 {
		panic("workload: need at least 2 subnets")
	}
	var out []ClassedPolicy
	for i := 0; i < cfg.PoliciesPerClass; i++ {
		for _, class := range []Class{ManyToOne, OneToMany, OneToOne} {
			cp := ClassedPolicy{Class: class}
			d := policy.NewDescriptor()
			switch class {
			case ManyToOne:
				cp.DstSubnet = 1 + rng.Intn(cfg.Subnets)
				cp.Service = randService(rng)
				d.Dst = topo.SubnetPrefix(cp.DstSubnet)
				d.DstPort = netaddr.SinglePort(cp.Service)
			case OneToMany:
				cp.SrcSubnet = 1 + rng.Intn(cfg.Subnets)
				cp.Service = webPort
				d.Src = topo.SubnetPrefix(cp.SrcSubnet)
				d.DstPort = netaddr.SinglePort(webPort)
				if cfg.Companions {
					// Return web traffic: src port 80 from anywhere back
					// into the subnet, reversed chain (§IV-A).
					rd := policy.NewDescriptor()
					rd.Dst = topo.SubnetPrefix(cp.SrcSubnet)
					rd.SrcPort = netaddr.SinglePort(webPort)
					rev := make(policy.ActionList, 0, len(class.Actions()))
					for i := len(class.Actions()) - 1; i >= 0; i-- {
						rev = append(rev, class.Actions()[i])
					}
					tbl.Add(rd, rev)
				}
			case OneToOne:
				cp.SrcSubnet = 1 + rng.Intn(cfg.Subnets)
				cp.DstSubnet = 1 + rng.Intn(cfg.Subnets-1)
				if cp.DstSubnet >= cp.SrcSubnet {
					cp.DstSubnet++
				}
				cp.Service = randService(rng)
				d.Src = topo.SubnetPrefix(cp.SrcSubnet)
				d.Dst = topo.SubnetPrefix(cp.DstSubnet)
				d.DstPort = netaddr.SinglePort(cp.Service)
			}
			cp.Policy = tbl.Add(d, class.Actions())
			out = append(out, cp)
		}
	}
	return out
}

// Flow is one generated traffic flow.
type Flow struct {
	Tuple   netaddr.FiveTuple
	Packets int
	// PacketBytes is the size of each packet in the flow.
	PacketBytes int
	// Under is the policy the flow was generated to match.
	Under *ClassedPolicy
	// SrcSubnet/DstSubnet are the subnet indexes of the endpoints.
	SrcSubnet, DstSubnet int
}

// SizeSampler draws bounded-Pareto flow sizes by inverse-CDF sampling.
type SizeSampler struct {
	alpha    float64
	min, max float64
	// precomputed 1 - (L/H)^alpha
	tail float64
}

// NewSizeSampler builds a sampler on [min, max] with shape alpha.
func NewSizeSampler(alpha float64, min, max int) *SizeSampler {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	l, h := float64(min), float64(max)
	return &SizeSampler{
		alpha: alpha, min: l, max: h,
		tail: 1 - math.Pow(l/h, alpha),
	}
}

// Sample draws one flow size in [min, max].
func (s *SizeSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	x := s.min * math.Pow(1-u*s.tail, -1/s.alpha)
	if x > s.max {
		x = s.max
	}
	n := int(x)
	if n < int(s.min) {
		n = int(s.min)
	}
	return n
}

// Mean returns the analytic mean of the bounded Pareto distribution.
func (s *SizeSampler) Mean() float64 {
	a, l, h := s.alpha, s.min, s.max
	if a == 1 {
		return l * math.Log(h/l) / (1 - l/h)
	}
	num := math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (1 - a)
	return num * (math.Pow(h, 1-a) - math.Pow(l, 1-a))
}

// defaultPacketBytes is the per-packet size used when flows do not
// specify one; small enough that IP-over-IP never fragments, so the
// fragmentation experiments vary it explicitly.
const defaultPacketBytes = 512

// GenerateFlows creates flows assigned to the classed policies until the
// cumulative packet count reaches targetPackets (§IV-A generates flows
// whose totals range 1M–10M). Flows rotate through the three classes so
// each class carries one third of the flows; within a class the concrete
// policy is chosen uniformly. The returned flows' tuples are guaranteed
// to match their generating policy's descriptor.
func GenerateFlows(cfg GenConfig, policies []ClassedPolicy, targetPackets int, rng *rand.Rand) []Flow {
	cfg.fill()
	byClass := map[Class][]*ClassedPolicy{}
	for i := range policies {
		cp := &policies[i]
		byClass[cp.Class] = append(byClass[cp.Class], cp)
	}
	classes := []Class{ManyToOne, OneToMany, OneToOne}
	for _, c := range classes {
		if len(byClass[c]) == 0 {
			panic(fmt.Sprintf("workload: no policies of class %v", c))
		}
	}
	sampler := NewSizeSampler(cfg.SizeAlpha, cfg.SizeMin, cfg.SizeMax)

	var flows []Flow
	total := 0
	for i := 0; total < targetPackets; i++ {
		class := classes[i%len(classes)]
		list := byClass[class]
		cp := list[rng.Intn(len(list))]
		f := Flow{
			Under:       cp,
			Packets:     sampler.Sample(rng),
			PacketBytes: defaultPacketBytes,
		}

		srcSub := cp.SrcSubnet
		if srcSub == 0 { // wildcard source: anywhere but the destination
			srcSub = randOther(rng, cfg.Subnets, cp.DstSubnet)
		}
		dstSub := cp.DstSubnet
		if dstSub == 0 { // wildcard destination: anywhere but the source
			dstSub = randOther(rng, cfg.Subnets, cp.SrcSubnet)
		}
		f.SrcSubnet, f.DstSubnet = srcSub, dstSub
		f.Tuple = netaddr.FiveTuple{
			Src:     topo.HostAddr(srcSub, 1+rng.Intn(200)),
			Dst:     topo.HostAddr(dstSub, 1+rng.Intn(200)),
			SrcPort: uint16(20000 + rng.Intn(40000)),
			DstPort: cp.Service,
			Proto:   netaddr.ProtoTCP,
		}
		flows = append(flows, f)
		total += f.Packets
	}
	return flows
}

// randOther picks a subnet index in [1, n] different from excl (0 = no
// exclusion).
func randOther(rng *rand.Rand, n, excl int) int {
	if excl == 0 {
		return 1 + rng.Intn(n)
	}
	v := 1 + rng.Intn(n-1)
	if v >= excl {
		v++
	}
	return v
}

// TotalPackets sums the packet counts of flows.
func TotalPackets(flows []Flow) int {
	total := 0
	for _, f := range flows {
		total += f.Packets
	}
	return total
}
