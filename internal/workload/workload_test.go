package workload

import (
	"math"
	"math/rand"
	"testing"

	"sdme/internal/netaddr"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

func TestClassActions(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ManyToOne, "FW -> IDS"},
		{OneToMany, "FW -> IDS -> WP"},
		{OneToOne, "IDS -> TM"},
	}
	for _, tt := range tests {
		if got := tt.c.Actions().String(); got != tt.want {
			t.Errorf("%v actions = %q, want %q", tt.c, got, tt.want)
		}
		if tt.c.String() == "" {
			t.Error("empty class string")
		}
	}
	if Class(9).Actions() != nil {
		t.Error("unknown class should have no actions")
	}
}

func TestGeneratePolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := policy.NewTable()
	cfg := GenConfig{Subnets: 10, PoliciesPerClass: 5}
	ps := GeneratePolicies(cfg, tbl, rng)

	if len(ps) != 15 || tbl.Len() != 15 {
		t.Fatalf("generated %d policies, table %d; want 15", len(ps), tbl.Len())
	}
	counts := map[Class]int{}
	for _, cp := range ps {
		counts[cp.Class]++
		switch cp.Class {
		case ManyToOne:
			if cp.DstSubnet < 1 || cp.DstSubnet > 10 || cp.SrcSubnet != 0 {
				t.Errorf("many-to-one subnets: %+v", cp)
			}
			if !cp.Policy.Desc.Src.IsAny() {
				t.Error("many-to-one must have wildcard source")
			}
		case OneToMany:
			if cp.SrcSubnet < 1 || cp.DstSubnet != 0 {
				t.Errorf("one-to-many subnets: %+v", cp)
			}
			if cp.Service != 80 {
				t.Errorf("one-to-many service = %d, want 80", cp.Service)
			}
		case OneToOne:
			if cp.SrcSubnet == cp.DstSubnet {
				t.Error("one-to-one must use distinct subnets")
			}
			if cp.SrcSubnet < 1 || cp.DstSubnet < 1 {
				t.Errorf("one-to-one subnets: %+v", cp)
			}
		}
		if !cp.Policy.Actions.Equal(cp.Class.Actions()) {
			t.Errorf("policy actions %v for class %v", cp.Policy.Actions, cp.Class)
		}
	}
	for _, c := range []Class{ManyToOne, OneToMany, OneToOne} {
		if counts[c] != 5 {
			t.Errorf("class %v count = %d, want 5", c, counts[c])
		}
	}
}

func TestGeneratePoliciesNeedsSubnets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic with 1 subnet")
		}
	}()
	GeneratePolicies(GenConfig{Subnets: 1}, policy.NewTable(), rand.New(rand.NewSource(1)))
}

func TestSizeSamplerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSizeSampler(0.65, 1, 5000)
	for i := 0; i < 20000; i++ {
		v := s.Sample(rng)
		if v < 1 || v > 5000 {
			t.Fatalf("sample %d out of [1,5000]", v)
		}
	}
}

func TestSizeSamplerMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSizeSampler(0.65, 1, 5000)
	want := s.Mean()
	if want < 25 || want > 45 {
		t.Fatalf("analytic mean %v outside the paper-consistent range (≈33)", want)
	}
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(s.Sample(rng))
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("empirical mean %v vs analytic %v", got, want)
	}
}

func TestSizeSamplerPowerLawShape(t *testing.T) {
	// Heavy tail: small flows dominate, but large flows exist.
	rng := rand.New(rand.NewSource(4))
	s := NewSizeSampler(0.65, 1, 5000)
	small, large := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		if v <= 10 {
			small++
		}
		if v >= 1000 {
			large++
		}
	}
	if small < n/2 {
		t.Errorf("only %d/%d samples <= 10; not heavy-headed", small, n)
	}
	if large == 0 {
		t.Error("no samples >= 1000; tail missing")
	}
	if large > n/10 {
		t.Errorf("%d/%d samples >= 1000; tail too fat", large, n)
	}
}

func TestSizeSamplerDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSizeSampler(0.65, 7, 7)
	for i := 0; i < 100; i++ {
		if v := s.Sample(rng); v != 7 {
			t.Fatalf("degenerate sampler returned %d", v)
		}
	}
	// min clamped to 1, max clamped to min.
	s2 := NewSizeSampler(1.0, 0, -5)
	if v := s2.Sample(rng); v != 1 {
		t.Errorf("clamped sampler returned %d", v)
	}
}

func TestGenerateFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl := policy.NewTable()
	cfg := GenConfig{Subnets: 10, PoliciesPerClass: 4}
	ps := GeneratePolicies(cfg, tbl, rng)
	const target = 100000
	flows := GenerateFlows(cfg, ps, target, rng)

	if got := TotalPackets(flows); got < target || got > target+5000 {
		t.Errorf("total packets = %d, want just past %d", got, target)
	}

	classCount := map[Class]int{}
	for _, f := range flows {
		classCount[f.Under.Class]++
		// Invariant: every flow matches its generating policy.
		if !f.Under.Policy.Desc.Matches(f.Tuple) {
			t.Fatalf("flow %v does not match its policy %v", f.Tuple, f.Under.Policy)
		}
		// And the table's first match must have the same action chain
		// (an earlier policy may shadow, but the generated classes use
		// disjoint services per subnet most of the time; require only
		// that some policy matches).
		if tbl.Match(f.Tuple) == nil {
			t.Fatalf("flow %v matches no policy in the table", f.Tuple)
		}
		if f.SrcSubnet == f.DstSubnet {
			t.Fatalf("flow within one subnet: %+v", f)
		}
		if f.Packets < 1 || f.Packets > 5000 {
			t.Fatalf("flow size %d out of range", f.Packets)
		}
	}
	n := len(flows)
	for c, cnt := range classCount {
		if cnt < n/3-n/30 || cnt > n/3+n/30 {
			t.Errorf("class %v has %d of %d flows; want ~1/3", c, cnt, n)
		}
	}
}

func TestGenerateFlowsDeterministic(t *testing.T) {
	gen := func() []Flow {
		rng := rand.New(rand.NewSource(7))
		tbl := policy.NewTable()
		cfg := GenConfig{Subnets: 5, PoliciesPerClass: 2}
		ps := GeneratePolicies(cfg, tbl, rng)
		return GenerateFlows(cfg, ps, 10000, rng)
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Tuple != b[i].Tuple || a[i].Packets != b[i].Packets {
			t.Fatalf("flow %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateFlowsFlowCountScalesLikePaper(t *testing.T) {
	// 1M packets should need roughly 30k flows (paper: 30k–300k flows
	// for 1M–10M packets).
	rng := rand.New(rand.NewSource(8))
	tbl := policy.NewTable()
	cfg := GenConfig{Subnets: 10, PoliciesPerClass: 4}
	ps := GeneratePolicies(cfg, tbl, rng)
	flows := GenerateFlows(cfg, ps, 1000000, rng)
	if len(flows) < 15000 || len(flows) > 60000 {
		t.Errorf("1M packets took %d flows; paper implies ≈30k", len(flows))
	}
}

func TestRandOther(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		if v := randOther(rng, 5, 3); v == 3 || v < 1 || v > 5 {
			t.Fatalf("randOther returned %d", v)
		}
		if v := randOther(rng, 5, 0); v < 1 || v > 5 {
			t.Fatalf("randOther no-exclusion returned %d", v)
		}
	}
}

func BenchmarkGenerateFlows1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl := policy.NewTable()
	cfg := GenConfig{Subnets: 10, PoliciesPerClass: 4}
	ps := GeneratePolicies(cfg, tbl, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateFlows(cfg, ps, 1000000, rng)
	}
}

func TestCompanionPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbl := policy.NewTable()
	cfg := GenConfig{Subnets: 6, PoliciesPerClass: 4, Companions: true}
	ps := GeneratePolicies(cfg, tbl, rng)
	// 12 classed policies + 4 companions (one per one-to-many).
	if len(ps) != 12 {
		t.Fatalf("classed policies = %d, want 12", len(ps))
	}
	if tbl.Len() != 16 {
		t.Fatalf("table has %d policies, want 16 (12 + 4 companions)", tbl.Len())
	}
	// A return web packet into a one-to-many subnet must match the
	// companion with the reversed chain.
	var oneToMany *ClassedPolicy
	for i := range ps {
		if ps[i].Class == OneToMany {
			oneToMany = &ps[i]
			break
		}
	}
	ret := netaddr.FiveTuple{
		Src: netaddr.MustParseAddr("93.184.216.34"), Dst: topo.HostAddr(oneToMany.SrcSubnet, 3),
		SrcPort: 80, DstPort: 52000, Proto: netaddr.ProtoTCP,
	}
	p := tbl.Match(ret)
	if p == nil {
		t.Fatal("return traffic unmatched")
	}
	want := policy.ActionList{policy.FuncWP, policy.FuncIDS, policy.FuncFW}
	if !p.Actions.Equal(want) {
		t.Errorf("companion chain = %v, want %v", p.Actions, want)
	}
}
