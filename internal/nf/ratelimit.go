package nf

import (
	"sync"

	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
)

// RateLimiter is an optional network function beyond the paper's four: a
// token-bucket per-flow policer. It exists both as a useful middlebox and
// as the reference example of extending the function set — register a
// type with policy.RegisterFunc and hand the controller a FunctionFactory
// that builds one of these.
//
// Time is the dataplane's int64 microsecond tick, so the limiter works
// identically under the simulator's virtual clock and the live runtime's
// wall clock.
type RateLimiter struct {
	// mu makes Process safe under concurrent dataplane workers.
	mu       sync.Mutex
	funcType policy.FuncType
	// rate is tokens (packets) per second; burst is the bucket depth.
	rate  float64
	burst float64

	buckets   map[netaddr.FiveTuple]*bucket
	processed int64
	dropped   int64
	// MaxFlows bounds the tracked flows; beyond it, new flows pass
	// unpoliced (fail-open, like the flow table's sketch fallback).
	MaxFlows int
}

type bucket struct {
	tokens float64
	last   int64
}

// NewRateLimiter creates a limiter enforcing ratePPS with the given burst
// for the registered function type.
func NewRateLimiter(t policy.FuncType, ratePPS, burst float64) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		funcType: t,
		rate:     ratePPS,
		burst:    burst,
		buckets:  make(map[netaddr.FiveTuple]*bucket),
		MaxFlows: 1 << 16,
	}
}

// Type implements Function.
func (r *RateLimiter) Type() policy.FuncType { return r.funcType }

// Process implements Function: token-bucket admission per flow.
func (r *RateLimiter) Process(pkt *packet.Packet, now int64) Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.processed++
	ft := pkt.FiveTuple()
	b, ok := r.buckets[ft]
	if !ok {
		if len(r.buckets) >= r.MaxFlows {
			return VerdictPass
		}
		b = &bucket{tokens: r.burst, last: now}
		r.buckets[ft] = b
	}
	// Refill.
	elapsed := float64(now-b.last) / 1e6
	if elapsed > 0 {
		b.tokens += elapsed * r.rate
		if b.tokens > r.burst {
			b.tokens = r.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		r.dropped++
		return VerdictDrop
	}
	b.tokens--
	return VerdictPass
}

// Processed implements Function.
func (r *RateLimiter) Processed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.processed
}

// Dropped returns how many packets the limiter policed away.
func (r *RateLimiter) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// TrackedFlows returns the number of flows with live buckets.
func (r *RateLimiter) TrackedFlows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}
