package nf

import (
	"bytes"
	"sync"

	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
)

// Signature is one IDS content signature.
type Signature struct {
	Name    string
	Pattern []byte
}

// DefaultSignatures returns a small built-in signature set; deployments
// supply their own.
func DefaultSignatures() []Signature {
	return []Signature{
		{Name: "exploit-shellcode-nop-sled", Pattern: []byte{0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90}},
		{Name: "sql-injection-union", Pattern: []byte("' UNION SELECT ")},
		{Name: "path-traversal", Pattern: []byte("../../../../")},
		{Name: "test-malware-marker", Pattern: []byte("EICAR-SDME-TEST")},
	}
}

// Alert is one intrusion-detection event.
type Alert struct {
	Signature string
	Flow      netaddr.FiveTuple
	At        int64
}

// portScanThreshold is the number of distinct destination ports from one
// source after which the scan detector raises an alert.
const portScanThreshold = 32

// IDS is a passive intrusion detection system: it scans payloads against
// content signatures and tracks per-source destination-port fan-out to
// flag port scans. Being passive, it always passes packets; its output is
// the alert log.
type IDS struct {
	// mu makes Process safe under concurrent dataplane workers.
	mu         sync.Mutex
	signatures []Signature
	processed  int64
	alerts     []Alert
	// scanPorts tracks the set of destination ports each source touched.
	scanPorts map[netaddr.Addr]map[uint16]struct{}
	// scanAlerted dedups port-scan alerts per source.
	scanAlerted map[netaddr.Addr]bool
	// MaxAlerts bounds the alert log; older alerts are discarded first.
	MaxAlerts int
}

var _ Function = (*IDS)(nil)

// NewIDS creates an IDS with the given signature set.
func NewIDS(sigs []Signature) *IDS {
	return &IDS{
		signatures:  append([]Signature(nil), sigs...),
		scanPorts:   make(map[netaddr.Addr]map[uint16]struct{}),
		scanAlerted: make(map[netaddr.Addr]bool),
		MaxAlerts:   4096,
	}
}

// Type implements Function.
func (s *IDS) Type() policy.FuncType { return policy.FuncIDS }

// Process implements Function: scan, record, always pass.
func (s *IDS) Process(pkt *packet.Packet, now int64) Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.processed++
	ft := pkt.FiveTuple()

	if len(pkt.Payload) > 0 {
		for _, sig := range s.signatures {
			if bytes.Contains(pkt.Payload, sig.Pattern) {
				s.raise(Alert{Signature: sig.Name, Flow: ft, At: now})
			}
		}
	}

	ports := s.scanPorts[ft.Src]
	if ports == nil {
		ports = make(map[uint16]struct{})
		s.scanPorts[ft.Src] = ports
	}
	ports[ft.DstPort] = struct{}{}
	if len(ports) >= portScanThreshold && !s.scanAlerted[ft.Src] {
		s.scanAlerted[ft.Src] = true
		s.raise(Alert{Signature: "port-scan", Flow: ft, At: now})
	}
	return VerdictPass
}

func (s *IDS) raise(a Alert) {
	if len(s.alerts) >= s.MaxAlerts {
		s.alerts = s.alerts[1:]
	}
	s.alerts = append(s.alerts, a)
}

// Processed implements Function.
func (s *IDS) Processed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processed
}

// Alerts returns a copy of the alert log (oldest first).
func (s *IDS) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Alert(nil), s.alerts...)
}
