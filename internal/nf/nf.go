// Package nf implements the network functions the paper's middleboxes
// offer (§IV-A): firewalling (FW), intrusion detection (IDS), web
// proxying with caching (WP), and traffic measurement (TM). Each is a
// real, stateful implementation — verdicts, alerts, an LRU cache, and
// exact plus sketch-based counters — not a pass-through stub, so examples
// and tests can observe genuine middlebox behaviour.
//
// The enforcement layer steers packets to middleboxes; middleboxes invoke
// their Function's Process on each packet and act on the verdict.
package nf

import (
	"fmt"

	"sdme/internal/packet"
	"sdme/internal/policy"
)

// Verdict is a function's decision about one packet.
type Verdict int

const (
	// VerdictPass continues the packet along its enforcement chain.
	VerdictPass Verdict = iota + 1
	// VerdictDrop discards the packet (firewall deny).
	VerdictDrop
	// VerdictServe answers the packet locally (web-proxy cache hit); the
	// packet does not continue down the chain.
	VerdictServe
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictDrop:
		return "drop"
	case VerdictServe:
		return "serve"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Function is one network function instance, owned by a single middlebox
// (no internal locking; middleboxes are single-threaded event handlers in
// the simulator and one-goroutine loops in the live runtime).
type Function interface {
	// Type identifies which policy action this function implements.
	Type() policy.FuncType
	// Process inspects/transforms one packet at virtual time now and
	// returns a verdict. The packet is the decapsulated original.
	Process(pkt *packet.Packet, now int64) Verdict
	// Processed returns how many packets this function has handled.
	Processed() int64
}

// New constructs a default instance of the given function type; it is the
// factory the deployment layer uses when materializing middleboxes.
func New(t policy.FuncType) (Function, error) {
	switch t {
	case policy.FuncFW:
		return NewFirewall(nil), nil
	case policy.FuncIDS:
		return NewIDS(DefaultSignatures()), nil
	case policy.FuncWP:
		return NewWebProxy(DefaultCacheCapacity), nil
	case policy.FuncTM:
		return NewTrafficMeasure(), nil
	default:
		return nil, fmt.Errorf("nf: no implementation for function %v", t)
	}
}
