package nf

import (
	"sort"
	"sync"

	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
)

// CountMinSketch is a fixed-memory frequency estimator. The traffic
// measurement function keeps exact per-flow counters only for flows it
// has room for; the sketch covers everything, so heavy-hitter queries
// stay accurate under memory pressure — the standard design for
// measurement middleboxes.
type CountMinSketch struct {
	width  int
	depth  int
	counts [][]uint64
	seeds  []uint64
}

// NewCountMinSketch creates a sketch with the given width (counters per
// row) and depth (independent rows).
func NewCountMinSketch(width, depth int) *CountMinSketch {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	s := &CountMinSketch{width: width, depth: depth}
	s.counts = make([][]uint64, depth)
	s.seeds = make([]uint64, depth)
	for i := range s.counts {
		s.counts[i] = make([]uint64, width)
		// Fixed distinct seeds; reproducibility matters more here than
		// adversarial resistance.
		s.seeds[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return s
}

// Add increments the estimate for the flow by delta.
func (s *CountMinSketch) Add(ft netaddr.FiveTuple, delta uint64) {
	for i := 0; i < s.depth; i++ {
		s.counts[i][ft.Hash(s.seeds[i])%uint64(s.width)] += delta
	}
}

// Estimate returns the (over-approximating) count for the flow.
func (s *CountMinSketch) Estimate(ft netaddr.FiveTuple) uint64 {
	var est uint64
	for i := 0; i < s.depth; i++ {
		c := s.counts[i][ft.Hash(s.seeds[i])%uint64(s.width)]
		if i == 0 || c < est {
			est = c
		}
	}
	return est
}

// FlowCount is one measured flow.
type FlowCount struct {
	Flow    netaddr.FiveTuple
	Packets uint64
	Bytes   uint64
}

// maxExactFlows bounds the exact counter table of a TrafficMeasure.
const maxExactFlows = 1 << 16

// TrafficMeasure is the paper's TM function: per-flow packet/byte
// accounting backed by exact counters up to a memory bound and a
// count-min sketch beyond it.
type TrafficMeasure struct {
	// mu makes Process safe under concurrent dataplane workers.
	mu        sync.Mutex
	exact     map[netaddr.FiveTuple]*FlowCount
	sketch    *CountMinSketch
	processed int64
	totalPkts uint64
	totalByte uint64
}

var _ Function = (*TrafficMeasure)(nil)

// NewTrafficMeasure creates a measurement function.
func NewTrafficMeasure() *TrafficMeasure {
	return &TrafficMeasure{
		exact:  make(map[netaddr.FiveTuple]*FlowCount),
		sketch: NewCountMinSketch(4096, 4),
	}
}

// Type implements Function.
func (m *TrafficMeasure) Type() policy.FuncType { return policy.FuncTM }

// Process implements Function: measure and pass.
func (m *TrafficMeasure) Process(pkt *packet.Packet, _ int64) Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.processed++
	ft := pkt.FiveTuple()
	size := uint64(pkt.Size())
	m.totalPkts++
	m.totalByte += size
	m.sketch.Add(ft, 1)
	fc, ok := m.exact[ft]
	if !ok {
		if len(m.exact) >= maxExactFlows {
			return VerdictPass // sketch still covers it
		}
		fc = &FlowCount{Flow: ft}
		m.exact[ft] = fc
	}
	fc.Packets++
	fc.Bytes += size
	return VerdictPass
}

// Processed implements Function.
func (m *TrafficMeasure) Processed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.processed
}

// Totals returns total packets and bytes seen.
func (m *TrafficMeasure) Totals() (packets, bytes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalPkts, m.totalByte
}

// FlowPackets returns the exact packet count for a flow (0 if untracked);
// EstimatePackets answers from the sketch instead.
func (m *TrafficMeasure) FlowPackets(ft netaddr.FiveTuple) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fc, ok := m.exact[ft]; ok {
		return fc.Packets
	}
	return 0
}

// EstimatePackets returns the sketch estimate for a flow.
func (m *TrafficMeasure) EstimatePackets(ft netaddr.FiveTuple) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sketch.Estimate(ft)
}

// TopFlows returns the k heaviest exactly-tracked flows by packets,
// descending, ties broken by flow identity for determinism.
func (m *TrafficMeasure) TopFlows(k int) []FlowCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]FlowCount, 0, len(m.exact))
	for _, fc := range m.exact {
		out = append(out, *fc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
