package nf

import (
	"container/list"
	"sync"

	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
)

// DefaultCacheCapacity is the web proxy's default object capacity.
const DefaultCacheCapacity = 4096

// objectKey identifies a cacheable web object: the server plus a content
// identifier. The content identifier comes from the request payload when
// present (a hash of the "URL" bytes) and falls back to the server tuple
// alone, which makes repeated requests to the same object cache-hit.
type objectKey struct {
	Server  netaddr.Addr
	Port    uint16
	Content uint64
}

// WebProxy is a caching forward proxy (the paper's WP function). A
// request whose object is cached is served locally — the §III-F example's
// "if the current version of pages requested is already cached, the
// request is honored" — which the enforcement layer sees as VerdictServe
// and terminates the chain. Misses insert the object and pass the packet
// onward to the real server.
type WebProxy struct {
	// mu makes Process safe under concurrent dataplane workers.
	mu        sync.Mutex
	capacity  int
	lru       *list.List // front = most recent; values are objectKey
	index     map[objectKey]*list.Element
	processed int64
	hits      int64
	misses    int64
}

var _ Function = (*WebProxy)(nil)

// NewWebProxy creates a proxy with the given cache capacity (objects).
func NewWebProxy(capacity int) *WebProxy {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &WebProxy{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[objectKey]*list.Element),
	}
}

// Type implements Function.
func (w *WebProxy) Type() policy.FuncType { return policy.FuncWP }

func contentHash(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func keyOf(pkt *packet.Packet) objectKey {
	ft := pkt.FiveTuple()
	k := objectKey{Server: ft.Dst, Port: ft.DstPort}
	if len(pkt.Payload) > 0 {
		k.Content = contentHash(pkt.Payload)
	}
	return k
}

// Process implements Function: cache hit serves locally, miss caches and
// passes.
func (w *WebProxy) Process(pkt *packet.Packet, _ int64) Verdict {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.processed++
	k := keyOf(pkt)
	if el, ok := w.index[k]; ok {
		w.lru.MoveToFront(el)
		w.hits++
		return VerdictServe
	}
	w.misses++
	w.index[k] = w.lru.PushFront(k)
	if w.lru.Len() > w.capacity {
		oldest := w.lru.Back()
		w.lru.Remove(oldest)
		delete(w.index, oldest.Value.(objectKey))
	}
	return VerdictPass
}

// Processed implements Function.
func (w *WebProxy) Processed() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.processed
}

// Hits returns the cache hit count.
func (w *WebProxy) Hits() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits
}

// Misses returns the cache miss count.
func (w *WebProxy) Misses() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.misses
}

// CacheLen returns the number of cached objects.
func (w *WebProxy) CacheLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lru.Len()
}
