package nf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
)

func mkpkt(src, dst string, dp uint16, payload []byte) *packet.Packet {
	p := packet.New(netaddr.FiveTuple{
		Src: netaddr.MustParseAddr(src), Dst: netaddr.MustParseAddr(dst),
		SrcPort: 4444, DstPort: dp, Proto: netaddr.ProtoTCP,
	}, len(payload))
	p.Payload = payload
	return p
}

func TestNewFactory(t *testing.T) {
	for _, ft := range []policy.FuncType{policy.FuncFW, policy.FuncIDS, policy.FuncWP, policy.FuncTM} {
		f, err := New(ft)
		if err != nil {
			t.Fatalf("New(%v): %v", ft, err)
		}
		if f.Type() != ft {
			t.Errorf("New(%v).Type() = %v", ft, f.Type())
		}
		if f.Processed() != 0 {
			t.Errorf("fresh function has Processed=%d", f.Processed())
		}
	}
	if _, err := New(policy.FuncType(99)); err == nil {
		t.Error("unknown function type should fail")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictPass.String() != "pass" || VerdictDrop.String() != "drop" || VerdictServe.String() != "serve" {
		t.Error("verdict strings wrong")
	}
	if Verdict(9).String() == "" {
		t.Error("unknown verdict should render")
	}
}

func TestFirewallDefaultAllow(t *testing.T) {
	fw := NewFirewall(nil)
	if v := fw.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, nil), 0); v != VerdictPass {
		t.Errorf("default verdict = %v, want pass", v)
	}
	if fw.Processed() != 1 || fw.Dropped() != 0 {
		t.Errorf("counters: processed=%d dropped=%d", fw.Processed(), fw.Dropped())
	}
}

func TestFirewallFirstMatch(t *testing.T) {
	denyAll := policy.NewDescriptor()
	allowWeb := policy.NewDescriptor()
	allowWeb.DstPort = netaddr.SinglePort(80)
	fw := NewFirewall([]FirewallRule{
		{Desc: allowWeb, Action: Allow},
		{Desc: denyAll, Action: Deny},
	})
	if v := fw.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, nil), 0); v != VerdictPass {
		t.Errorf("web packet verdict = %v, want pass (first rule)", v)
	}
	if v := fw.Process(mkpkt("1.1.1.1", "2.2.2.2", 22, nil), 0); v != VerdictDrop {
		t.Errorf("ssh packet verdict = %v, want drop", v)
	}
	if fw.Dropped() != 1 {
		t.Errorf("dropped = %d", fw.Dropped())
	}
}

func TestFirewallDenySubnet(t *testing.T) {
	d := policy.NewDescriptor()
	d.Src = netaddr.MustParsePrefix("10.66.0.0/16")
	fw := NewFirewall(nil)
	fw.AddRule(FirewallRule{Desc: d, Action: Deny})
	if v := fw.Process(mkpkt("10.66.3.4", "2.2.2.2", 80, nil), 0); v != VerdictDrop {
		t.Error("blacklisted subnet should be dropped")
	}
	if v := fw.Process(mkpkt("10.67.3.4", "2.2.2.2", 80, nil), 0); v != VerdictPass {
		t.Error("other subnet should pass")
	}
}

func TestIDSSignatureDetection(t *testing.T) {
	ids := NewIDS(DefaultSignatures())
	clean := mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("GET /index.html"))
	if v := ids.Process(clean, 5); v != VerdictPass {
		t.Errorf("verdict = %v; IDS must always pass", v)
	}
	if len(ids.Alerts()) != 0 {
		t.Fatalf("clean payload raised alerts: %v", ids.Alerts())
	}
	dirty := mkpkt("6.6.6.6", "2.2.2.2", 80, []byte("GET /../../../../etc/passwd"))
	if v := ids.Process(dirty, 9); v != VerdictPass {
		t.Errorf("verdict = %v; IDS is passive", v)
	}
	alerts := ids.Alerts()
	if len(alerts) != 1 || alerts[0].Signature != "path-traversal" || alerts[0].At != 9 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Flow.Src != netaddr.MustParseAddr("6.6.6.6") {
		t.Errorf("alert flow = %v", alerts[0].Flow)
	}
}

func TestIDSPortScanDetection(t *testing.T) {
	ids := NewIDS(nil)
	for port := uint16(1); port <= portScanThreshold; port++ {
		ids.Process(mkpkt("6.6.6.6", "2.2.2.2", port, nil), 0)
	}
	alerts := ids.Alerts()
	if len(alerts) != 1 || alerts[0].Signature != "port-scan" {
		t.Fatalf("alerts = %+v", alerts)
	}
	// More scanning from the same source does not re-alert.
	ids.Process(mkpkt("6.6.6.6", "2.2.2.2", 9999, nil), 0)
	if len(ids.Alerts()) != 1 {
		t.Error("port-scan alert should be deduplicated per source")
	}
	// A normal client touching few ports never alerts.
	for port := uint16(1); port <= 3; port++ {
		ids.Process(mkpkt("7.7.7.7", "2.2.2.2", port, nil), 0)
	}
	if len(ids.Alerts()) != 1 {
		t.Error("few-port client should not alert")
	}
}

func TestIDSAlertBound(t *testing.T) {
	ids := NewIDS(DefaultSignatures())
	ids.MaxAlerts = 3
	bad := []byte("x' UNION SELECT password")
	for i := 0; i < 10; i++ {
		ids.Process(mkpkt("6.6.6.6", "2.2.2.2", 80, bad), int64(i))
	}
	if len(ids.Alerts()) != 3 {
		t.Errorf("alert log = %d entries, want 3", len(ids.Alerts()))
	}
	// Oldest discarded: remaining alerts are the latest three.
	if ids.Alerts()[0].At != 7 {
		t.Errorf("oldest kept alert at %d, want 7", ids.Alerts()[0].At)
	}
}

func TestWebProxyCache(t *testing.T) {
	wp := NewWebProxy(10)
	req := func(url string) Verdict {
		return wp.Process(mkpkt("1.1.1.1", "93.184.216.34", 80, []byte(url)), 0)
	}
	if v := req("GET /a"); v != VerdictPass {
		t.Errorf("first request = %v, want pass (miss)", v)
	}
	if v := req("GET /a"); v != VerdictServe {
		t.Errorf("repeat request = %v, want serve (hit)", v)
	}
	if v := req("GET /b"); v != VerdictPass {
		t.Errorf("different object = %v, want pass", v)
	}
	if wp.Hits() != 1 || wp.Misses() != 2 {
		t.Errorf("hits=%d misses=%d", wp.Hits(), wp.Misses())
	}
	if wp.CacheLen() != 2 {
		t.Errorf("cache len = %d", wp.CacheLen())
	}
}

func TestWebProxyLRUEviction(t *testing.T) {
	wp := NewWebProxy(2)
	urls := []string{"GET /a", "GET /b", "GET /c"} // /a evicted by /c
	for _, u := range urls {
		wp.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, []byte(u)), 0)
	}
	if wp.CacheLen() != 2 {
		t.Fatalf("cache len = %d, want 2", wp.CacheLen())
	}
	if v := wp.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("GET /a")), 0); v != VerdictServe {
		// /a was evicted, so this is a miss.
		if v != VerdictPass {
			t.Errorf("verdict = %v", v)
		}
	} else {
		t.Error("evicted object should not hit")
	}
	// /b stays resident (recently used when /c was inserted? No — plain
	// insertion order: /b is more recent than /a). Touch /c, insert /d,
	// then /c must survive and /b be gone.
	wp.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("GET /c")), 0) // hit, moves to front
	wp.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("GET /d")), 0) // insert, evicts
	if v := wp.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("GET /c")), 0); v != VerdictServe {
		t.Error("recently used object was evicted")
	}
}

func TestWebProxyDistinctServers(t *testing.T) {
	wp := NewWebProxy(10)
	wp.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("GET /a")), 0)
	if v := wp.Process(mkpkt("1.1.1.1", "3.3.3.3", 80, []byte("GET /a")), 0); v != VerdictPass {
		t.Error("same path on a different server must be a distinct object")
	}
}

func TestWebProxyCapacityDefault(t *testing.T) {
	if NewWebProxy(0).capacity != DefaultCacheCapacity {
		t.Error("zero capacity should fall back to default")
	}
}

func TestTrafficMeasureExact(t *testing.T) {
	tm := NewTrafficMeasure()
	p := mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("xxxx"))
	for i := 0; i < 5; i++ {
		if v := tm.Process(p, 0); v != VerdictPass {
			t.Fatalf("verdict = %v", v)
		}
	}
	ftup := p.FiveTuple()
	if got := tm.FlowPackets(ftup); got != 5 {
		t.Errorf("FlowPackets = %d, want 5", got)
	}
	pkts, bytes := tm.Totals()
	if pkts != 5 || bytes != uint64(5*p.Size()) {
		t.Errorf("Totals = %d pkts %d bytes", pkts, bytes)
	}
	if est := tm.EstimatePackets(ftup); est < 5 {
		t.Errorf("sketch estimate %d < true 5", est)
	}
}

func TestTrafficMeasureTopFlows(t *testing.T) {
	tm := NewTrafficMeasure()
	heavy := mkpkt("1.1.1.1", "2.2.2.2", 80, nil)
	light := mkpkt("3.3.3.3", "4.4.4.4", 443, nil)
	for i := 0; i < 10; i++ {
		tm.Process(heavy, 0)
	}
	tm.Process(light, 0)
	top := tm.TopFlows(1)
	if len(top) != 1 || top[0].Packets != 10 || top[0].Flow != heavy.FiveTuple() {
		t.Errorf("TopFlows = %+v", top)
	}
	if got := tm.TopFlows(10); len(got) != 2 {
		t.Errorf("TopFlows(10) = %d flows, want 2", len(got))
	}
}

func TestSketchNeverUndercounts(t *testing.T) {
	// The count-min sketch's defining property: estimates are always >=
	// the true count.
	rng := rand.New(rand.NewSource(12))
	s := NewCountMinSketch(512, 4)
	truth := map[netaddr.FiveTuple]uint64{}
	flows := make([]netaddr.FiveTuple, 200)
	for i := range flows {
		flows[i] = netaddr.FiveTuple{
			Src: netaddr.Addr(rng.Uint32()), Dst: netaddr.Addr(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65536)), DstPort: 80, Proto: netaddr.ProtoTCP,
		}
	}
	for i := 0; i < 20000; i++ {
		f := flows[rng.Intn(len(flows))]
		s.Add(f, 1)
		truth[f]++
	}
	for f, want := range truth {
		if got := s.Estimate(f); got < want {
			t.Fatalf("sketch undercounts flow %v: %d < %d", f, got, want)
		}
	}
}

func TestSketchAccuracyOnHeavyHitter(t *testing.T) {
	s := NewCountMinSketch(4096, 4)
	hh := netaddr.FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	s.Add(hh, 100000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		s.Add(netaddr.FiveTuple{Src: netaddr.Addr(rng.Uint32()), Dst: 2, DstPort: 80}, 1)
	}
	est := s.Estimate(hh)
	if est < 100000 || est > 100000+1000 {
		t.Errorf("heavy hitter estimate %d far from 100000", est)
	}
}

func TestSketchMinimumDimensions(t *testing.T) {
	s := NewCountMinSketch(0, 0)
	f := netaddr.FiveTuple{Src: 1}
	s.Add(f, 3)
	if s.Estimate(f) < 3 {
		t.Error("degenerate sketch still must not undercount")
	}
}

func TestSketchAdditivityProperty(t *testing.T) {
	// Property: adding the same flow n times yields estimate >= n, and
	// for a sketch with a single flow inserted, exactly n.
	f := func(n uint8) bool {
		s := NewCountMinSketch(64, 2)
		flow := netaddr.FiveTuple{Src: 9, Dst: 8, SrcPort: 7, DstPort: 6, Proto: 6}
		for i := 0; i < int(n); i++ {
			s.Add(flow, 1)
		}
		return s.Estimate(flow) == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFirewallProcess(b *testing.B) {
	rules := make([]FirewallRule, 50)
	for i := range rules {
		d := policy.NewDescriptor()
		d.DstPort = netaddr.SinglePort(uint16(i + 1000))
		rules[i] = FirewallRule{Desc: d, Action: Deny}
	}
	fw := NewFirewall(rules)
	p := mkpkt("1.1.1.1", "2.2.2.2", 80, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Process(p, 0)
	}
}

func BenchmarkIDSProcess(b *testing.B) {
	ids := NewIDS(DefaultSignatures())
	p := mkpkt("1.1.1.1", "2.2.2.2", 80, []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids.Process(p, 0)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := NewCountMinSketch(4096, 4)
	f := netaddr.FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(f, 1)
	}
}

func TestRateLimiterBurstThenPolice(t *testing.T) {
	rlType := policy.RegisterFunc("RL-TEST-1")
	rl := NewRateLimiter(rlType, 10, 3) // 10 pps, burst 3
	p := mkpkt("1.1.1.1", "2.2.2.2", 80, nil)

	// Burst: first 3 packets at t=0 pass, the 4th is policed.
	for i := 0; i < 3; i++ {
		if v := rl.Process(p, 0); v != VerdictPass {
			t.Fatalf("burst packet %d: %v", i, v)
		}
	}
	if v := rl.Process(p, 0); v != VerdictDrop {
		t.Fatalf("over-burst packet: %v, want drop", v)
	}
	// 100ms later one token (10 pps) has refilled.
	if v := rl.Process(p, 100_000); v != VerdictPass {
		t.Fatalf("refilled packet: %v", v)
	}
	if v := rl.Process(p, 100_000); v != VerdictDrop {
		t.Fatalf("still-empty bucket: %v", v)
	}
	if rl.Dropped() != 2 || rl.Processed() != 6 {
		t.Errorf("counters: dropped=%d processed=%d", rl.Dropped(), rl.Processed())
	}
	if rl.Type() != rlType {
		t.Errorf("Type = %v", rl.Type())
	}
}

func TestRateLimiterPerFlowIsolation(t *testing.T) {
	rlType := policy.RegisterFunc("RL-TEST-2")
	rl := NewRateLimiter(rlType, 1, 1)
	a := mkpkt("1.1.1.1", "2.2.2.2", 80, nil)
	b := mkpkt("3.3.3.3", "2.2.2.2", 80, nil)
	if rl.Process(a, 0) != VerdictPass {
		t.Fatal("flow a first packet should pass")
	}
	if rl.Process(a, 0) != VerdictDrop {
		t.Fatal("flow a second packet should be policed")
	}
	// Flow b has its own bucket.
	if rl.Process(b, 0) != VerdictPass {
		t.Fatal("flow b must not be policed by flow a's bucket")
	}
	if rl.TrackedFlows() != 2 {
		t.Errorf("tracked = %d", rl.TrackedFlows())
	}
}

func TestRateLimiterFailOpenAtCapacity(t *testing.T) {
	rlType := policy.RegisterFunc("RL-TEST-3")
	rl := NewRateLimiter(rlType, 1, 1)
	rl.MaxFlows = 1
	rl.Process(mkpkt("1.1.1.1", "2.2.2.2", 80, nil), 0)
	// A second flow exceeds MaxFlows: it passes unpoliced, repeatedly.
	extra := mkpkt("9.9.9.9", "2.2.2.2", 80, nil)
	for i := 0; i < 5; i++ {
		if rl.Process(extra, 0) != VerdictPass {
			t.Fatal("over-capacity flow must fail open")
		}
	}
	if rl.TrackedFlows() != 1 {
		t.Errorf("tracked = %d, want 1", rl.TrackedFlows())
	}
}

func TestRateLimiterBurstFloor(t *testing.T) {
	rl := NewRateLimiter(policy.RegisterFunc("RL-TEST-4"), 5, 0)
	if rl.burst != 1 {
		t.Errorf("burst floor = %v, want 1", rl.burst)
	}
}
