package nf

import (
	"sync"

	"sdme/internal/packet"
	"sdme/internal/policy"
)

// FirewallAction is a rule's disposition.
type FirewallAction int

const (
	// Allow lets matching packets pass.
	Allow FirewallAction = iota + 1
	// Deny drops matching packets.
	Deny
)

// FirewallRule pairs a traffic descriptor with a disposition. Rules are
// evaluated first-match, like the policy table itself.
type FirewallRule struct {
	Desc   policy.Descriptor
	Action FirewallAction
}

// Firewall is a stateful packet filter with first-match rules and a
// default-allow disposition (the enforcement layer already selected the
// traffic; the firewall's job here is the paper's FW action).
type Firewall struct {
	// mu makes Process safe under concurrent dataplane workers (functions
	// are shared across the flows a middlebox serves, so flow-affinity
	// dispatch alone does not serialize them).
	mu        sync.Mutex
	rules     []FirewallRule
	processed int64
	dropped   int64
}

var _ Function = (*Firewall)(nil)

// NewFirewall creates a firewall with the given rule list (may be nil).
func NewFirewall(rules []FirewallRule) *Firewall {
	return &Firewall{rules: append([]FirewallRule(nil), rules...)}
}

// AddRule appends a rule.
func (f *Firewall) AddRule(r FirewallRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
}

// Type implements Function.
func (f *Firewall) Type() policy.FuncType { return policy.FuncFW }

// Process implements Function: first matching rule decides; default allow.
func (f *Firewall) Process(pkt *packet.Packet, _ int64) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.processed++
	ft := pkt.FiveTuple()
	for _, r := range f.rules {
		if r.Desc.Matches(ft) {
			if r.Action == Deny {
				f.dropped++
				return VerdictDrop
			}
			return VerdictPass
		}
	}
	return VerdictPass
}

// Processed implements Function.
func (f *Firewall) Processed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.processed
}

// Dropped returns how many packets the firewall denied.
func (f *Firewall) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}
