package topo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdme/internal/netaddr"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Node{Name: "a", Kind: KindCoreRouter, Attach: InvalidNode})
	b := g.AddNode(Node{Name: "b", Kind: KindCoreRouter, Attach: InvalidNode})
	c := g.AddNode(Node{Name: "c", Kind: KindEdgeRouter, Attach: InvalidNode})
	g.AddLink(Link{A: a, B: b})
	g.AddLink(Link{A: b, B: c, Cost: 3})

	if g.NumNodes() != 3 || g.NumLinks() != 2 {
		t.Fatalf("size = (%d nodes, %d links), want (3, 2)", g.NumNodes(), g.NumLinks())
	}
	if g.Degree(b) != 2 || g.Degree(a) != 1 {
		t.Errorf("degrees: a=%d b=%d", g.Degree(a), g.Degree(b))
	}
	if g.Link(0).Cost != 1 {
		t.Errorf("default cost = %v, want 1", g.Link(0).Cost)
	}
	if g.Link(0).MTU != DefaultMTU {
		t.Errorf("default MTU = %v, want %v", g.Link(0).MTU, DefaultMTU)
	}
	if g.Link(1).Cost != 3 {
		t.Errorf("explicit cost = %v, want 3", g.Link(1).Cost)
	}
	if !g.HasLink(a, b) || !g.HasLink(b, a) || g.HasLink(a, c) {
		t.Error("HasLink wrong")
	}
	if !g.Connected() {
		t.Error("graph should be connected")
	}
}

func TestGraphDisconnected(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{Name: "a", Kind: KindCoreRouter, Attach: InvalidNode})
	g.AddNode(Node{Name: "b", Kind: KindCoreRouter, Attach: InvalidNode})
	if g.Connected() {
		t.Error("two isolated routers should not be connected")
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Node{Name: "a", Kind: KindCoreRouter, Attach: InvalidNode})

	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("self-loop", func() { g.AddLink(Link{A: a, B: a}) })
	assertPanics("bad node in link", func() { g.AddLink(Link{A: a, B: 99}) })
	assertPanics("Node out of range", func() { g.Node(5) })
	assertPanics("Link out of range", func() { g.Link(0) })
	assertPanics("Neighbors out of range", func() { g.Neighbors(-1) })
}

func TestNodeByAddr(t *testing.T) {
	g := NewGraph()
	addr := netaddr.MustParseAddr("172.16.0.1")
	id := g.AddNode(Node{Name: "r", Kind: KindCoreRouter, Addr: addr, Attach: InvalidNode})
	if got := g.NodeByAddr(addr); got != id {
		t.Errorf("NodeByAddr = %v, want %v", got, id)
	}
	if got := g.NodeByAddr(netaddr.MustParseAddr("1.2.3.4")); got != InvalidNode {
		t.Errorf("unknown addr: got %v, want InvalidNode", got)
	}
}

func TestCampusShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Campus(CampusConfig{WithProxies: true}, rng)
	s := g.Summarize()

	if s.Gateways != 2 {
		t.Errorf("gateways = %d, want 2", s.Gateways)
	}
	if s.Core != 16 {
		t.Errorf("core = %d, want 16", s.Core)
	}
	if s.Edge != 10 {
		t.Errorf("edge = %d, want 10", s.Edge)
	}
	if s.Proxies != 10 {
		t.Errorf("proxies = %d, want 10", s.Proxies)
	}
	if !s.ConnectedRouters {
		t.Error("campus must be connected")
	}

	// Paper: each core router connects to both gateways.
	gws := g.NodesOfKind(KindGateway)
	for _, c := range g.NodesOfKind(KindCoreRouter) {
		for _, gw := range gws {
			if !g.HasLink(c, gw) {
				t.Errorf("core %v missing link to gateway %v", c, gw)
			}
		}
	}

	// Every edge router fronts a distinct /16 and has a proxy.
	seen := map[string]bool{}
	for _, e := range g.NodesOfKind(KindEdgeRouter) {
		n := g.Node(e)
		if n.Subnet.Bits() != 16 {
			t.Errorf("edge %s subnet = %v, want /16", n.Name, n.Subnet)
		}
		if seen[n.Subnet.String()] {
			t.Errorf("duplicate subnet %v", n.Subnet)
		}
		seen[n.Subnet.String()] = true
		if len(g.AttachedOfKind(e, KindProxy)) != 1 {
			t.Errorf("edge %s: want exactly 1 proxy", n.Name)
		}
	}
}

func TestCampusDeterministic(t *testing.T) {
	g1 := Campus(CampusConfig{WithProxies: true}, rand.New(rand.NewSource(7)))
	g2 := Campus(CampusConfig{WithProxies: true}, rand.New(rand.NewSource(7)))
	if g1.NumNodes() != g2.NumNodes() || g1.NumLinks() != g2.NumLinks() {
		t.Fatal("same seed must give same graph size")
	}
	for i := 0; i < g1.NumLinks(); i++ {
		if g1.Link(i) != g2.Link(i) {
			t.Fatalf("link %d differs between same-seed graphs", i)
		}
	}
}

func TestWaxmanShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Waxman(WaxmanConfig{WithProxies: true}, rng)
	s := g.Summarize()

	if s.Core != 25 {
		t.Errorf("core = %d, want 25", s.Core)
	}
	if s.Edge != 400 {
		t.Errorf("edge = %d, want 400", s.Edge)
	}
	if s.Proxies != 400 {
		t.Errorf("proxies = %d, want 400", s.Proxies)
	}
	if !s.ConnectedRouters {
		t.Error("waxman must be connected")
	}

	// Paper: 4 core-to-core links per core router; the spanning tree can
	// force a node above the target, and exhaustion can leave one below,
	// but the bulk must sit at exactly 4.
	coreDeg := func(id NodeID) int {
		d := 0
		for _, adj := range g.Neighbors(id) {
			if g.Node(adj.Neighbor).Kind == KindCoreRouter {
				d++
			}
		}
		return d
	}
	at4 := 0
	for _, c := range g.NodesOfKind(KindCoreRouter) {
		if d := coreDeg(c); d == 4 {
			at4++
		} else if d < 2 || d > 8 {
			t.Errorf("core %v degree %d way off target 4", c, d)
		}
	}
	if at4 < 20 {
		t.Errorf("only %d/25 cores at degree 4", at4)
	}

	// Edge routers split evenly: 400/25 = 16 per core.
	for _, c := range g.NodesOfKind(KindCoreRouter) {
		edges := 0
		for _, adj := range g.Neighbors(c) {
			if g.Node(adj.Neighbor).Kind == KindEdgeRouter {
				edges++
			}
		}
		if edges != 16 {
			t.Errorf("core %v fronts %d edge routers, want 16", c, edges)
		}
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	g1 := Waxman(WaxmanConfig{}, rand.New(rand.NewSource(11)))
	g2 := Waxman(WaxmanConfig{}, rand.New(rand.NewSource(11)))
	if g1.NumLinks() != g2.NumLinks() {
		t.Fatal("same seed must give same link count")
	}
	for i := 0; i < g1.NumLinks(); i++ {
		if g1.Link(i) != g2.Link(i) {
			t.Fatalf("link %d differs between same-seed graphs", i)
		}
	}
}

func TestSubnetAddressingUnique(t *testing.T) {
	// 400 subnets must have non-overlapping prefixes and distinct
	// router/proxy/host addresses.
	prefixes := make([]netaddr.Prefix, 0, 400)
	addrs := map[netaddr.Addr]bool{}
	for i := 1; i <= 400; i++ {
		p := SubnetPrefix(i)
		for _, q := range prefixes {
			if p.Overlaps(q) {
				t.Fatalf("subnet %d prefix %v overlaps %v", i, p, q)
			}
		}
		prefixes = append(prefixes, p)
		for _, a := range []netaddr.Addr{subnetRouterAddr(i), subnetProxyAddr(i), HostAddr(i, 1)} {
			if addrs[a] {
				t.Fatalf("duplicate address %v at subnet %d", a, i)
			}
			if !p.Contains(a) {
				t.Fatalf("address %v not inside its subnet %v", a, p)
			}
			addrs[a] = true
		}
	}
}

func TestSubnetOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Campus(CampusConfig{}, rng)
	edges := g.NodesOfKind(KindEdgeRouter)
	for i, e := range edges {
		host := HostAddr(i+1, 7)
		if got := g.SubnetOwner(host); got != e {
			t.Errorf("SubnetOwner(%v) = %v, want edge %v", host, got, e)
		}
	}
	if got := g.SubnetOwner(netaddr.MustParseAddr("99.99.99.99")); got != InvalidNode {
		t.Errorf("external address should have no owner, got %v", got)
	}
}

func TestAttachHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Campus(CampusConfig{}, rng)
	core := g.NodesOfKind(KindCoreRouter)[0]
	mb := AttachMiddlebox(g, core, 1, "fw1")
	if g.Node(mb).Kind != KindMiddlebox || g.Node(mb).Attach != core {
		t.Errorf("middlebox node wrong: %+v", g.Node(mb))
	}
	if !g.HasLink(mb, core) {
		t.Error("middlebox must link to its router")
	}
	if got := g.AttachedOfKind(core, KindMiddlebox); len(got) != 1 || got[0] != mb {
		t.Errorf("AttachedOfKind = %v", got)
	}

	edge := g.NodesOfKind(KindEdgeRouter)[2]
	h := AttachHost(g, edge, 3, 1)
	if g.Node(h).Addr != HostAddr(3, 1) {
		t.Errorf("host addr = %v", g.Node(h).Addr)
	}
	if g.SubnetOwner(g.Node(h).Addr) != edge {
		t.Error("host should live in its edge router's subnet")
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindCoreRouter, "core"}, {KindEdgeRouter, "edge"}, {KindGateway, "gateway"},
		{KindMiddlebox, "middlebox"}, {KindProxy, "proxy"}, {KindHost, "host"},
		{Kind(42), "kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestSortedIDs(t *testing.T) {
	in := []NodeID{5, 1, 3}
	out := SortedIDs(in)
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("SortedIDs = %v", out)
	}
	if in[0] != 5 {
		t.Error("SortedIDs must not mutate its input")
	}
}

func TestWeightedIndexProperty(t *testing.T) {
	// Property: weightedIndex never returns an index with zero weight when
	// some weight is positive.
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			weights[i] = float64(r % 2) // 0 or 1
			anyPos = anyPos || weights[i] > 0
		}
		rng := rand.New(rand.NewSource(seed))
		idx := weightedIndex(rng, weights)
		if idx < 0 || idx >= len(weights) {
			return false
		}
		if anyPos && weights[idx] == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPickDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	got := pickDistinct(rng, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Errorf("bad pick %v in %v", v, got)
		}
		seen[v] = true
	}
	if got := pickDistinct(rng, 3, 10); len(got) != 3 {
		t.Errorf("k>n should return all n, got %v", got)
	}
}

func TestOffPathProxyAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := Campus(CampusConfig{WithProxies: true, OffPathProxies: true}, rng)
	for _, p := range g.NodesOfKind(KindProxy) {
		if !g.Node(p).OffPath {
			t.Errorf("proxy %v not marked off-path", p)
		}
	}
	g2 := Campus(CampusConfig{WithProxies: true}, rand.New(rand.NewSource(13)))
	for _, p := range g2.NodesOfKind(KindProxy) {
		if g2.Node(p).OffPath {
			t.Errorf("proxy %v should be in-path by default", p)
		}
	}
	// Manual attachment helpers agree with the config flag.
	edge := g2.NodesOfKind(KindEdgeRouter)[0]
	off := AttachProxyOffPath(g2, edge, 99)
	if !g2.Node(off).OffPath {
		t.Error("AttachProxyOffPath did not mark the node")
	}
}
