// Package topo models the physical network underneath the policy
// enforcement system: routers, gateways, middlebox and proxy attachment
// points, and the links between them. It also provides the two topology
// generators used in the paper's evaluation (§IV-A): a real-world campus
// network and a random Waxman graph.
//
// The graph is policy-oblivious on purpose — nodes and links know nothing
// about middlebox functions. Higher layers (internal/route, internal/ospf,
// internal/controller) compute paths and assignments over it.
package topo

import (
	"fmt"
	"sort"

	"sdme/internal/netaddr"
)

// NodeID identifies a node in a Graph. IDs are dense and start at 0, so
// they can index slices directly.
type NodeID int

// InvalidNode is returned by lookups that find nothing.
const InvalidNode NodeID = -1

// Kind classifies the role of a node in the network.
type Kind int

// Node kinds. Core and edge routers run the routing protocol; gateways are
// edge routers toward the Internet; middleboxes and proxies are the
// software-defined devices of the paper, attached to routers; hosts sit in
// stub networks behind edge routers.
const (
	KindCoreRouter Kind = iota + 1
	KindEdgeRouter
	KindGateway
	KindMiddlebox
	KindProxy
	KindHost
)

// String renders the kind for debugging and tooling output.
func (k Kind) String() string {
	switch k {
	case KindCoreRouter:
		return "core"
	case KindEdgeRouter:
		return "edge"
	case KindGateway:
		return "gateway"
	case KindMiddlebox:
		return "middlebox"
	case KindProxy:
		return "proxy"
	case KindHost:
		return "host"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsRouter reports whether the node participates in routing (forwards
// transit packets): core routers, edge routers and gateways do.
func (k Kind) IsRouter() bool {
	return k == KindCoreRouter || k == KindEdgeRouter || k == KindGateway
}

// Node is a vertex of the network graph.
type Node struct {
	ID   NodeID
	Name string
	Kind Kind
	// X, Y are planar coordinates; the Waxman generator places routers in
	// a 100x100 region and uses the Euclidean distance for its link
	// probability. Coordinates of the campus topology are synthetic.
	X, Y float64
	// Addr is the node's own address (loopback/management address for
	// routers, the tunnel endpoint address for middleboxes and proxies).
	Addr netaddr.Addr
	// Subnet is the stub network behind an edge router, or the zero value
	// for nodes that front no subnet.
	Subnet netaddr.Prefix
	// Attach is the router a middlebox/proxy/host connects to, or
	// InvalidNode for routers themselves.
	Attach NodeID
	// OffPath marks a policy proxy deployed off the forwarding path
	// (§III-A of the paper): the edge router loops subnet traffic out to
	// the proxy and back before regular forwarding, instead of the proxy
	// sitting in line. Functionally identical; it costs one extra
	// router↔proxy round trip per outbound packet, which the simulator
	// accounts.
	OffPath bool
}

// Link is an undirected edge between two nodes.
type Link struct {
	A, B NodeID
	// Cost is the routing metric (OSPF cost). The evaluation uses 1 per
	// hop so that shortest paths are hop-count paths.
	Cost float64
	// DelayUS is the propagation delay in microseconds, used by the
	// discrete-event simulator.
	DelayUS int64
	// BandwidthBPS is the link capacity in bits per second (0 = infinite).
	BandwidthBPS int64
	// MTU is the maximum transmission unit in bytes. The label-switching
	// enhancement of the paper (§III-E) exists precisely because
	// IP-over-IP encapsulation can push packets past this limit.
	MTU int
}

// DefaultMTU is used when a link does not specify one.
const DefaultMTU = 1500

// Graph is the network topology. Construct with NewGraph, then AddNode and
// AddLink. A Graph is not safe for concurrent mutation; once built it is
// read-only and safe to share.
type Graph struct {
	nodes []Node
	links []Link
	// adjacency: adj[id] lists (neighbor, link index) pairs.
	adj [][]Adjacency
	// byAddr finds a node by its address.
	byAddr map[netaddr.Addr]NodeID
}

// Adjacency is one incident edge of a node.
type Adjacency struct {
	Neighbor NodeID
	LinkIdx  int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byAddr: make(map[netaddr.Addr]NodeID)}
}

// AddNode inserts a node and returns its assigned ID. The ID field of the
// argument is ignored and overwritten.
func (g *Graph) AddNode(n Node) NodeID {
	n.ID = NodeID(len(g.nodes))
	if n.Attach == 0 && !n.Kind.IsRouter() {
		// Zero is a valid NodeID; require explicit attachment via
		// AttachNode for non-routers created without one.
	}
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	if !n.Addr.IsZero() {
		g.byAddr[n.Addr] = n.ID
	}
	return n.ID
}

// AddLink inserts an undirected link. Cost defaults to 1 and MTU to
// DefaultMTU when left zero. It returns the link index.
func (g *Graph) AddLink(l Link) int {
	if l.Cost == 0 {
		l.Cost = 1
	}
	if l.MTU == 0 {
		l.MTU = DefaultMTU
	}
	if !g.valid(l.A) || !g.valid(l.B) {
		panic(fmt.Sprintf("topo: AddLink(%d,%d): unknown node", l.A, l.B))
	}
	if l.A == l.B {
		panic(fmt.Sprintf("topo: AddLink: self-loop at node %d", l.A))
	}
	idx := len(g.links)
	g.links = append(g.links, l)
	g.adj[l.A] = append(g.adj[l.A], Adjacency{Neighbor: l.B, LinkIdx: idx})
	g.adj[l.B] = append(g.adj[l.B], Adjacency{Neighbor: l.A, LinkIdx: idx})
	return idx
}

func (g *Graph) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID. It panics on out-of-range IDs,
// which always indicate a programming error in a caller.
func (g *Graph) Node(id NodeID) Node {
	if !g.valid(id) {
		panic(fmt.Sprintf("topo: Node(%d): out of range [0,%d)", id, len(g.nodes)))
	}
	return g.nodes[id]
}

// Link returns the link at the given index.
func (g *Graph) Link(i int) Link {
	if i < 0 || i >= len(g.links) {
		panic(fmt.Sprintf("topo: Link(%d): out of range [0,%d)", i, len(g.links)))
	}
	return g.links[i]
}

// Neighbors returns the adjacency list of a node. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(id NodeID) []Adjacency {
	if !g.valid(id) {
		panic(fmt.Sprintf("topo: Neighbors(%d): out of range", id))
	}
	return g.adj[id]
}

// Degree returns the number of links incident to a node.
func (g *Graph) Degree(id NodeID) int { return len(g.Neighbors(id)) }

// NodeByAddr finds the node owning an address, or InvalidNode.
func (g *Graph) NodeByAddr(a netaddr.Addr) NodeID {
	if id, ok := g.byAddr[a]; ok {
		return id
	}
	return InvalidNode
}

// NodesOfKind returns the IDs of all nodes of the given kind, in ID order.
func (g *Graph) NodesOfKind(k Kind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// Routers returns the IDs of all routing-capable nodes in ID order.
func (g *Graph) Routers() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind.IsRouter() {
			out = append(out, n.ID)
		}
	}
	return out
}

// SubnetOwner returns the edge router whose stub subnet contains addr, or
// InvalidNode. Longest prefix wins when subnets nest.
func (g *Graph) SubnetOwner(addr netaddr.Addr) NodeID {
	best, bestBits := InvalidNode, -1
	for _, n := range g.nodes {
		if n.Subnet.Bits() == 0 && n.Subnet.Addr().IsZero() {
			continue
		}
		if n.Subnet.Contains(addr) && n.Subnet.Bits() > bestBits {
			best, bestBits = n.ID, n.Subnet.Bits()
		}
	}
	return best
}

// AttachedOfKind returns nodes of kind k attached (directly) to router r,
// in ID order.
func (g *Graph) AttachedOfKind(r NodeID, k Kind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == k && n.Attach == r {
			out = append(out, n.ID)
		}
	}
	return out
}

// Connected reports whether the subgraph induced by routing-capable nodes
// is connected. Generators use it to validate their output.
func (g *Graph) Connected() bool {
	routers := g.Routers()
	if len(routers) == 0 {
		return true
	}
	seen := make(map[NodeID]bool, len(routers))
	stack := []NodeID{routers[0]}
	seen[routers[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, adj := range g.adj[cur] {
			n := g.nodes[adj.Neighbor]
			if !n.Kind.IsRouter() || seen[n.ID] {
				continue
			}
			seen[n.ID] = true
			stack = append(stack, n.ID)
		}
	}
	return len(seen) == len(routers)
}

// HasLink reports whether an undirected link between a and b exists.
func (g *Graph) HasLink(a, b NodeID) bool {
	for _, adj := range g.Neighbors(a) {
		if adj.Neighbor == b {
			return true
		}
	}
	return false
}

// SortedIDs returns ids sorted ascending; a convenience for deterministic
// iteration in callers and tests.
func SortedIDs(ids []NodeID) []NodeID {
	out := make([]NodeID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes a graph for logging and the topology CLI.
type Stats struct {
	Nodes, Links                  int
	Core, Edge, Gateways          int
	Middleboxes, Proxies, Hosts   int
	MinRouterDegree, MaxRouterDeg int
	ConnectedRouters              bool
}

// Summarize computes Stats for the graph.
func (g *Graph) Summarize() Stats {
	s := Stats{
		Nodes:            len(g.nodes),
		Links:            len(g.links),
		MinRouterDegree:  -1,
		ConnectedRouters: g.Connected(),
	}
	for _, n := range g.nodes {
		switch n.Kind {
		case KindCoreRouter:
			s.Core++
		case KindEdgeRouter:
			s.Edge++
		case KindGateway:
			s.Gateways++
		case KindMiddlebox:
			s.Middleboxes++
		case KindProxy:
			s.Proxies++
		case KindHost:
			s.Hosts++
		}
		if n.Kind.IsRouter() {
			d := len(g.adj[n.ID])
			if s.MinRouterDegree < 0 || d < s.MinRouterDegree {
				s.MinRouterDegree = d
			}
			if d > s.MaxRouterDeg {
				s.MaxRouterDeg = d
			}
		}
	}
	return s
}
