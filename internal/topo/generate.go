package topo

import (
	"fmt"
	"math"
	"math/rand"

	"sdme/internal/netaddr"
)

// Address plan used by the generators:
//
//	10.<i>.0.0/16      stub subnet behind edge router i (i starts at 1)
//	10.<i>.0.1         the edge router's subnet-facing address
//	10.<i>.0.2         the policy proxy of the subnet
//	10.<i>.1.<h>       hosts
//	172.16.<hi>.<lo>   router loopback addresses
//	172.31.<hi>.<lo>   middlebox addresses
//
// Middlebox and proxy addresses are globally routable inside the model so
// that IP-over-IP tunnels can target them directly, as §III-B requires.

func routerAddr(seq int) netaddr.Addr {
	return netaddr.AddrFrom4(172, 16, byte(seq/250), byte(seq%250+1))
}

func middleboxAddr(seq int) netaddr.Addr {
	return netaddr.AddrFrom4(172, 31, byte(seq/250), byte(seq%250+1))
}

func subnetBase(i int) netaddr.Addr {
	return netaddr.AddrFrom4(10, 0, 0, 0) + netaddr.Addr(i<<16)
}

// SubnetPrefix returns the /16 stub prefix of subnet index i (1-based).
// For i > 245 the prefix rolls into the 11.x space; every index still maps
// to a unique, non-overlapping /16.
func SubnetPrefix(i int) netaddr.Prefix {
	return netaddr.PrefixFrom(subnetBase(i), 16)
}

func subnetPrefix(i int) netaddr.Prefix { return SubnetPrefix(i) }

// SubnetIndexOf recovers the 1-based subnet index an address belongs to,
// or 0 when the address is outside the generated stub-subnet plan.
func SubnetIndexOf(a netaddr.Addr) int {
	i := int(a-subnetBase(0)) >> 16
	if i < 1 || !SubnetPrefix(i).Contains(a) {
		return 0
	}
	return i
}

func subnetRouterAddr(i int) netaddr.Addr { return subnetBase(i) + 1 }
func subnetProxyAddr(i int) netaddr.Addr  { return subnetBase(i) + 2 }

// HostAddr returns the address of host h (1-based) in subnet i (1-based).
func HostAddr(i, h int) netaddr.Addr {
	return subnetBase(i) + netaddr.Addr(256+h)
}

// CampusConfig parameterizes the campus generator. The zero value is
// replaced by the paper's §IV-A settings: 2 gateways, 16 core routers each
// connected to both gateways, and 10 edge routers.
type CampusConfig struct {
	Gateways    int
	CoreRouters int
	EdgeRouters int
	// CoreRingLinks adds a ring over the core routers for core-to-core
	// path diversity (the paper does not specify core-core wiring; the
	// gateways alone would make them a 2-hub star). Default true.
	NoCoreRing bool
	// EdgeUplinks is how many core routers each edge router connects to
	// (default 2, for the redundancy typical of campus designs).
	EdgeUplinks int
	// WithProxies attaches one policy proxy per edge-router subnet.
	WithProxies bool
	// OffPathProxies deploys the proxies off-path (§III-A) instead of
	// in-path; only meaningful with WithProxies.
	OffPathProxies bool
	// LinkDelayUS is the per-link propagation delay for the simulator
	// (default 100us).
	LinkDelayUS int64
}

func (c *CampusConfig) fill() {
	if c.Gateways == 0 {
		c.Gateways = 2
	}
	if c.CoreRouters == 0 {
		c.CoreRouters = 16
	}
	if c.EdgeRouters == 0 {
		c.EdgeRouters = 10
	}
	if c.EdgeUplinks == 0 {
		c.EdgeUplinks = 2
	}
	if c.LinkDelayUS == 0 {
		c.LinkDelayUS = 100
	}
}

// Campus builds the campus topology of §IV-A: gateways at the top, core
// routers each wired to every gateway, and edge routers multihomed to the
// core. Edge router i fronts stub subnet 10.i.0.0/16. The rng drives only
// the edge-to-core attachment choice.
func Campus(cfg CampusConfig, rng *rand.Rand) *Graph {
	cfg.fill()
	g := NewGraph()
	seq := 0
	newRouter := func(name string, kind Kind, x, y float64) NodeID {
		seq++
		return g.AddNode(Node{
			Name: name, Kind: kind, X: x, Y: y,
			Addr: routerAddr(seq), Attach: InvalidNode,
		})
	}

	gws := make([]NodeID, cfg.Gateways)
	for i := range gws {
		gws[i] = newRouter(fmt.Sprintf("gw%d", i+1), KindGateway, float64(20+60*i), 90)
	}
	cores := make([]NodeID, cfg.CoreRouters)
	for i := range cores {
		x := 100 * float64(i+1) / float64(cfg.CoreRouters+1)
		cores[i] = newRouter(fmt.Sprintf("core%d", i+1), KindCoreRouter, x, 55)
		for _, gw := range gws {
			g.AddLink(Link{A: cores[i], B: gw, DelayUS: cfg.LinkDelayUS})
		}
	}
	if !cfg.NoCoreRing && cfg.CoreRouters > 2 {
		for i := range cores {
			g.AddLink(Link{A: cores[i], B: cores[(i+1)%len(cores)], DelayUS: cfg.LinkDelayUS})
		}
	}
	for i := 0; i < cfg.EdgeRouters; i++ {
		x := 100 * float64(i+1) / float64(cfg.EdgeRouters+1)
		id := newRouter(fmt.Sprintf("edge%d", i+1), KindEdgeRouter, x, 20)
		n := g.nodes[id]
		n.Subnet = subnetPrefix(i + 1)
		g.nodes[id] = n
		g.byAddr[subnetRouterAddr(i+1)] = id
		ups := cfg.EdgeUplinks
		if ups > len(cores) {
			ups = len(cores)
		}
		for _, c := range pickDistinct(rng, len(cores), ups) {
			g.AddLink(Link{A: id, B: cores[c], DelayUS: cfg.LinkDelayUS})
		}
		if cfg.WithProxies {
			attachProxy(g, id, i+1, cfg.OffPathProxies)
		}
	}
	return g
}

// AttachProxy adds an in-path policy proxy in front of edge router edge,
// serving subnet index subnetIdx (1-based), and returns its node ID.
func AttachProxy(g *Graph, edge NodeID, subnetIdx int) NodeID {
	return attachProxy(g, edge, subnetIdx, false)
}

// AttachProxyOffPath adds an off-path policy proxy hanging off edge
// router edge (§III-A: the router is configured with a loopback that
// forwards subnet traffic to the proxy and back).
func AttachProxyOffPath(g *Graph, edge NodeID, subnetIdx int) NodeID {
	return attachProxy(g, edge, subnetIdx, true)
}

func attachProxy(g *Graph, edge NodeID, subnetIdx int, offPath bool) NodeID {
	e := g.Node(edge)
	id := g.AddNode(Node{
		Name: fmt.Sprintf("proxy-%s", e.Name), Kind: KindProxy,
		X: e.X, Y: e.Y - 5,
		Addr:    subnetProxyAddr(subnetIdx),
		Subnet:  e.Subnet,
		Attach:  edge,
		OffPath: offPath,
	})
	g.AddLink(Link{A: id, B: edge, DelayUS: 20})
	return id
}

// AttachMiddlebox adds a middlebox node connected to the given router and
// returns its node ID. seq must be unique per middlebox (it derives the
// address).
func AttachMiddlebox(g *Graph, router NodeID, seq int, name string) NodeID {
	r := g.Node(router)
	id := g.AddNode(Node{
		Name: name, Kind: KindMiddlebox,
		X: r.X + 2, Y: r.Y + 2,
		Addr:   middleboxAddr(seq),
		Attach: router,
	})
	g.AddLink(Link{A: id, B: router, DelayUS: 20})
	return id
}

// AttachHost adds a host in subnet subnetIdx behind the given edge router.
// h is the 1-based host index within the subnet.
func AttachHost(g *Graph, edge NodeID, subnetIdx, h int) NodeID {
	e := g.Node(edge)
	id := g.AddNode(Node{
		Name: fmt.Sprintf("h%d.%d", subnetIdx, h), Kind: KindHost,
		X: e.X, Y: e.Y - 10,
		Addr:   HostAddr(subnetIdx, h),
		Attach: edge,
	})
	g.AddLink(Link{A: id, B: edge, DelayUS: 20})
	return id
}

// WaxmanConfig parameterizes the Waxman generator. The zero value is
// replaced by the paper's settings: 400 edge routers, 25 core routers in a
// 100x100 region, 4 core-to-core links per core router.
type WaxmanConfig struct {
	EdgeRouters int
	CoreRouters int
	CoreDegree  int
	// Alpha and Beta are the Waxman parameters: two routers at Euclidean
	// distance d connect with probability Alpha*exp(-d/(Beta*L)) where L
	// is the maximum possible distance. Defaults 0.4 and 0.14 (common in
	// the literature); the degree constraint dominates the final shape.
	Alpha, Beta    float64
	Region         float64 // side of the square placement region, default 100
	WithProxies    bool
	OffPathProxies bool
	LinkDelayUS    int64
}

func (c *WaxmanConfig) fill() {
	if c.EdgeRouters == 0 {
		c.EdgeRouters = 400
	}
	if c.CoreRouters == 0 {
		c.CoreRouters = 25
	}
	if c.CoreDegree == 0 {
		c.CoreDegree = 4
	}
	if c.Alpha == 0 {
		c.Alpha = 0.4
	}
	if c.Beta == 0 {
		c.Beta = 0.14
	}
	if c.Region == 0 {
		c.Region = 100
	}
	if c.LinkDelayUS == 0 {
		c.LinkDelayUS = 100
	}
}

// Waxman builds the random topology of §IV-A. Core routers are placed
// uniformly at random in a Region x Region square and interconnected by a
// degree-constrained Waxman process: a random spanning tree weighted by
// the Waxman probability guarantees connectivity, then additional links
// are sampled (still Waxman-weighted) until every core router has
// CoreDegree core-to-core links or no legal pair remains. Edge routers are
// split evenly across core routers.
func Waxman(cfg WaxmanConfig, rng *rand.Rand) *Graph {
	cfg.fill()
	g := NewGraph()
	seq := 0
	cores := make([]NodeID, cfg.CoreRouters)
	for i := range cores {
		seq++
		cores[i] = g.AddNode(Node{
			Name: fmt.Sprintf("core%d", i+1), Kind: KindCoreRouter,
			X: rng.Float64() * cfg.Region, Y: rng.Float64() * cfg.Region,
			Addr: routerAddr(seq), Attach: InvalidNode,
		})
	}
	connectWaxman(g, cores, cfg, rng)

	perCore := cfg.EdgeRouters / cfg.CoreRouters
	extra := cfg.EdgeRouters % cfg.CoreRouters
	idx := 0
	for ci, core := range cores {
		n := perCore
		if ci < extra {
			n++
		}
		for j := 0; j < n; j++ {
			idx++
			seq++
			c := g.Node(core)
			id := g.AddNode(Node{
				Name: fmt.Sprintf("edge%d", idx), Kind: KindEdgeRouter,
				X: c.X + rng.Float64()*4 - 2, Y: c.Y + rng.Float64()*4 - 2,
				Addr: routerAddr(seq), Attach: InvalidNode,
			})
			nn := g.nodes[id]
			nn.Subnet = subnetPrefix(idx)
			g.nodes[id] = nn
			g.byAddr[subnetRouterAddr(idx)] = id
			g.AddLink(Link{A: id, B: core, DelayUS: cfg.LinkDelayUS})
			if cfg.WithProxies {
				attachProxy(g, id, idx, cfg.OffPathProxies)
			}
		}
	}
	return g
}

// connectWaxman wires the core mesh: spanning tree first (connectivity),
// then Waxman-weighted extra links up to the degree target.
func connectWaxman(g *Graph, cores []NodeID, cfg WaxmanConfig, rng *rand.Rand) {
	n := len(cores)
	if n < 2 {
		return
	}
	maxDist := cfg.Region * math.Sqrt2
	prob := func(a, b NodeID) float64 {
		na, nb := g.Node(a), g.Node(b)
		d := math.Hypot(na.X-nb.X, na.Y-nb.Y)
		return cfg.Alpha * math.Exp(-d/(cfg.Beta*maxDist))
	}

	// Random spanning tree: attach each new node to an already-connected
	// node chosen with probability proportional to the Waxman weight.
	order := rng.Perm(n)
	connected := []NodeID{cores[order[0]]}
	for _, oi := range order[1:] {
		v := cores[oi]
		u := weightedPick(rng, connected, func(u NodeID) float64 { return prob(u, v) })
		g.AddLink(Link{A: u, B: v, DelayUS: cfg.LinkDelayUS})
		connected = append(connected, v)
	}

	// Fill to the degree target. Candidate pairs are all non-adjacent
	// pairs where both endpoints are under the target; sample them with
	// Waxman weights until exhausted.
	deg := func(id NodeID) int {
		d := 0
		for _, adj := range g.Neighbors(id) {
			if g.Node(adj.Neighbor).Kind == KindCoreRouter {
				d++
			}
		}
		return d
	}
	for {
		type pair struct{ a, b NodeID }
		var cands []pair
		var weights []float64
		for i := 0; i < n; i++ {
			if deg(cores[i]) >= cfg.CoreDegree {
				continue
			}
			for j := i + 1; j < n; j++ {
				if deg(cores[j]) >= cfg.CoreDegree || g.HasLink(cores[i], cores[j]) {
					continue
				}
				cands = append(cands, pair{cores[i], cores[j]})
				weights = append(weights, prob(cores[i], cores[j]))
			}
		}
		if len(cands) == 0 {
			return
		}
		k := weightedIndex(rng, weights)
		g.AddLink(Link{A: cands[k].a, B: cands[k].b, DelayUS: cfg.LinkDelayUS})
	}
}

// pickDistinct returns k distinct values in [0,n), order random.
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return rng.Perm(n)[:k]
}

// weightedPick selects one of items with probability proportional to
// weight(item); uniform fallback if all weights are zero.
func weightedPick(rng *rand.Rand, items []NodeID, weight func(NodeID) float64) NodeID {
	weights := make([]float64, len(items))
	for i, it := range items {
		weights[i] = weight(it)
	}
	return items[weightedIndex(rng, weights)]
}

func weightedIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
