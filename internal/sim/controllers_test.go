package sim_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/sim"
)

// TestControllerGroupElectsOneLeader: the base case — three replicas,
// one election, exactly one leader.
func TestControllerGroupElectsOneLeader(t *testing.T) {
	eng := sim.NewEngine()
	g, err := sim.NewControllerGroup(eng, sim.ControllerGroupConfig{
		Dir: t.TempDir(), LeaseUS: 10_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	id, term, _ := g.RunUntilLeader(5_000_000, 1)
	if id < 0 {
		t.Fatal("no leader elected")
	}
	if term == 0 {
		t.Fatal("leader at term 0")
	}
	leaders := 0
	for i := 0; i < g.N(); i++ {
		if g.Replica(i).Elector().Role() == controller.RoleLeader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d replicas lead at once", leaders)
	}
}

// TestElectionAtMostOneLeaderPerTerm is the safety property test: across
// 1000 randomized-seed runs — each with a leader kill and a transient
// partition stirring re-elections — no term may ever produce two
// promotions, and the full promotion trace must be a pure function of
// the seed.
func TestElectionAtMostOneLeaderPerTerm(t *testing.T) {
	runs := 1000
	if testing.Short() {
		runs = 60
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4242))
	for run := 0; run < runs; run++ {
		seed := rng.Int63()
		trace1 := electionHistory(t, fmt.Sprintf("%s/a%d", dir, run), seed)
		byTerm := make(map[uint64]int)
		for _, p := range trace1 {
			if prev, dup := byTerm[p.Term]; dup && prev != p.ID {
				t.Fatalf("seed %d: term %d won by both replica %d and replica %d",
					seed, p.Term, prev, p.ID)
			}
			byTerm[p.Term] = p.ID
		}
		// Determinism spot-check on a sample (full double-runs would
		// double the test's cost for no extra safety coverage).
		if run%97 == 0 {
			trace2 := electionHistory(t, fmt.Sprintf("%s/b%d", dir, run), seed)
			if len(trace1) != len(trace2) {
				t.Fatalf("seed %d: reruns promoted %d vs %d times", seed, len(trace1), len(trace2))
			}
			for i := range trace1 {
				if trace1[i] != trace2[i] {
					t.Fatalf("seed %d: rerun diverged at promotion %d: %+v vs %+v",
						seed, i, trace1[i], trace2[i])
				}
			}
		}
	}
}

// TestTakeoverRefusesLongerButStalerJournal replays the scenario where
// a length-only up-to-date check loses quorum-acked records: leader A
// gets partitioned and appends an un-acked tail; B wins the next term
// and quorum-acks records (including its term marker) to C; B dies
// before A ever resyncs; A heals and bids with a LONGER journal than
// C's. A must lose the election (staler lastTerm), C must win holding
// the acked records, and A's diverged tail must then be resynced away.
func TestTakeoverRefusesLongerButStalerJournal(t *testing.T) {
	dir := t.TempDir()
	eng := sim.NewEngine()
	g, err := sim.NewControllerGroup(eng, sim.ControllerGroupConfig{
		Dir: dir, LeaseUS: 10_000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	idA, termA, _ := g.RunUntilLeader(2_000_000, 1)
	if idA < 0 {
		t.Fatal("no first leader")
	}
	// Partition A from both peers, then let it append an un-acked tail —
	// records no other replica will ever hold.
	for p := 0; p < g.N(); p++ {
		if p != idA {
			g.SetPartitioned(idA, p, true)
		}
	}
	ja := g.Replica(idA).Journal()
	if ja == nil {
		t.Fatal("partitioned leader lost its journal handle before self-deposing")
	}
	for i := uint64(0); i < 8; i++ {
		if err := ja.LogEpoch(100+i, termA); err != nil {
			t.Fatal(err)
		}
	}
	// B wins the next term on the majority side and quorum-acks its term
	// marker to C.
	idB, termB, _ := g.RunUntilLeader(eng.Now()+2_000_000, termA+1)
	if idB < 0 {
		t.Fatal("no takeover on the majority side")
	}
	if idB == idA {
		t.Fatalf("partitioned replica %d won term %d", idA, termB)
	}
	idC := -1
	for p := 0; p < g.N(); p++ {
		if p != idA && p != idB {
			idC = p
		}
	}
	// Give replication a moment to land the term marker on C, then kill B
	// before A ever hears from it.
	eng.Run(eng.Now() + 100_000)
	g.Kill(idB)
	for p := 0; p < g.N(); p++ {
		if p != idA {
			g.SetPartitioned(idA, p, false)
		}
	}
	if g.Replica(idA).JournalBytes() <= g.Replica(idC).JournalBytes() {
		t.Fatalf("test setup: A (%d bytes) not longer than C (%d bytes), scenario void",
			g.Replica(idA).JournalBytes(), g.Replica(idC).JournalBytes())
	}
	idNew, termNew, _ := g.RunUntilLeader(eng.Now()+3_000_000, termB+1)
	if idNew < 0 {
		t.Fatal("no leader after healing the partition")
	}
	if idNew != idC {
		t.Fatalf("replica %d won term %d; want %d — the longer-but-staler journal was elected",
			idNew, termNew, idC)
	}
	// The quorum-acked term-B marker must have survived takeover...
	st, err := controller.ReplayJournal(fmt.Sprintf("%s/replica-%d.wal", dir, idC))
	if err != nil {
		t.Fatal(err)
	}
	if st.Term < termB {
		t.Fatalf("new leader's journal replays term %d, lost the quorum-acked term-%d record", st.Term, termB)
	}
	// ...and A's diverged tail must be resynced to the new leader's bytes.
	eng.Run(eng.Now() + 1_000_000)
	a, c := g.Replica(idA), g.Replica(idC)
	if a.JournalBytes() != c.JournalBytes() || a.JournalCRC() != c.JournalCRC() {
		t.Fatalf("A did not converge to the new leader: %d bytes CRC %#x vs %d bytes CRC %#x",
			a.JournalBytes(), a.JournalCRC(), c.JournalBytes(), c.JournalCRC())
	}
}

// electionHistory runs one seeded group through a kill and a healed
// partition and returns its promotion trace.
func electionHistory(t *testing.T, dir string, seed int64) []sim.Promotion {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	g, err := sim.NewControllerGroup(eng, sim.ControllerGroupConfig{
		Dir: dir, LeaseUS: 10_000, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	id0, term0, _ := g.RunUntilLeader(2_000_000, 1)
	if id0 < 0 {
		t.Fatalf("seed %d: no first leader", seed)
	}
	// Stir: kill the incumbent, force a takeover.
	g.Kill(id0)
	id1, _, _ := g.RunUntilLeader(eng.Now()+2_000_000, term0+1)
	if id1 < 0 {
		t.Fatalf("seed %d: no takeover after killing %d", seed, id0)
	}
	// Stir harder: briefly cut the new leader off one peer, then heal and
	// let the dust settle. With N=3 and one replica dead this starves the
	// lease, so the leader must self-depose and a later term re-elects.
	var peer int
	for peer = 0; peer < g.N(); peer++ {
		if peer != id1 && g.Alive(peer) {
			break
		}
	}
	g.SetPartitioned(id1, peer, true)
	eng.Run(eng.Now() + 100_000)
	g.SetPartitioned(id1, peer, false)
	g.RunUntilLeader(eng.Now()+2_000_000, 1)
	return g.Promotions()
}
