package sim_test

import (
	"math/rand"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/policy"
	"sdme/internal/topo"
)

// TestClosedLoopRebalancing exercises the paper's §III-C control loop end
// to end inside the simulator: proxies measure traffic, the controller
// collects the measurements, solves the LB program, and pushes new
// weights to running nodes — all without disturbing in-flight soft state.
func TestClosedLoopRebalancing(t *testing.T) {
	opts := controller.Options{Strategy: enforce.LoadBalanced, HashSeed: 77}
	b := newSimBed(t, opts)
	rng := rand.New(rand.NewSource(21))

	mkFlows := func(n int) []enforce.FlowDemand {
		var out []enforce.FlowDemand
		for i := 0; i < n; i++ {
			src := 1 + rng.Intn(3)
			dst := 1 + rng.Intn(2)
			if dst >= src {
				dst++
			}
			out = append(out, enforce.FlowDemand{
				Tuple:   flowTuple(src, dst, 80, uint16(rng.Intn(30000))),
				Packets: int64(2 + rng.Intn(8)),
			})
		}
		return out
	}

	// Epoch 1: no weights installed yet (uniform fallback). Run traffic;
	// the proxies measure it.
	for i, d := range mkFlows(50) {
		if err := b.nw.InjectFlow(d.Tuple, int(d.Packets), 256, int64(i)*40, 20); err != nil {
			t.Fatal(err)
		}
	}
	b.nw.Run(0)

	// Controller collects the proxies' measurements — the real §III-C
	// reporting path, not a flows-derived shortcut.
	meas := controller.Collect(b.nodes)
	if len(meas) == 0 {
		t.Fatal("proxies measured nothing")
	}
	var measured int64
	for _, v := range meas {
		measured += v
	}
	if measured != b.nw.Stats().PacketsInjected {
		t.Fatalf("measured %d packets, injected %d", measured, b.nw.Stats().PacketsInjected)
	}

	sol, err := b.ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	controller.ApplyWeights(b.nodes, sol)
	for _, n := range b.nodes {
		n.ResetMeasurements()
	}

	// Epoch 2: same traffic pattern under the solved weights. Realized
	// IDS spread must be tight around the LP's expectation.
	rng = rand.New(rand.NewSource(21)) // regenerate the same population
	for i, d := range mkFlows(50) {
		if err := b.nw.InjectFlow(d.Tuple, int(d.Packets), 256, int64(i)*40, 20); err != nil {
			t.Fatal(err)
		}
	}
	before := b.nw.MiddleboxLoads()
	b.nw.Run(0)
	after := b.nw.MiddleboxLoads()

	var maxIDS, totalIDS int64
	for _, id := range b.dep.Providers(policy.FuncIDS) {
		l := after[id] - before[id]
		totalIDS += l
		if l > maxIDS {
			maxIDS = l
		}
	}
	if totalIDS == 0 {
		t.Fatal("no IDS traffic in epoch 2")
	}
	// Two IDS boxes: perfect balance is totalIDS/2; allow 15% sampling
	// slack at this small flow count.
	if float64(maxIDS) > float64(totalIDS)/2*1.15 {
		t.Errorf("epoch-2 IDS max %d of %d; rebalancing ineffective", maxIDS, totalIDS)
	}
	if b.nw.Stats().EnforcementErrors != 0 {
		t.Errorf("enforcement errors during rebalancing: %+v", b.nw.Stats())
	}
}

// TestMiddleboxFailureRepairInSim fails a firewall mid-run; the
// controller reassigns candidates on the live nodes and traffic keeps
// flowing through the surviving box.
func TestMiddleboxFailureRepairInSim(t *testing.T) {
	b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato})

	inject := func(base int64, n int) {
		for i := 0; i < n; i++ {
			ft := flowTuple(1+i%3, 1+(i+1)%3, 80, uint16(7000+i))
			if ft.Src == ft.Dst {
				continue
			}
			if err := b.nw.InjectFlow(ft, 3, 256, base+int64(i)*30, 15); err != nil {
				t.Fatal(err)
			}
		}
	}
	inject(0, 20)
	b.nw.Run(0)

	// Fail the busiest firewall.
	var dead topo.NodeID = topo.InvalidNode
	var deadLoad int64 = -1
	for _, id := range b.dep.Providers(policy.FuncFW) {
		if l := b.nodes[id].Counters.Load; l > deadLoad {
			dead, deadLoad = id, l
		}
	}
	if deadLoad <= 0 {
		t.Fatal("no firewall load before failure")
	}
	if err := b.ctl.MarkFailed(dead, true); err != nil {
		t.Fatal(err)
	}
	if err := b.ctl.Reassign(b.nodes); err != nil {
		t.Fatal(err)
	}

	deliveredBefore := b.nw.Stats().Delivered
	loadAtFailure := b.nodes[dead].Counters.Load
	inject(b.nw.Engine.Now()+1000, 20)
	b.nw.Run(0)

	if got := b.nodes[dead].Counters.Load; got != loadAtFailure {
		t.Errorf("failed firewall processed %d more packets", got-loadAtFailure)
	}
	if b.nw.Stats().Delivered <= deliveredBefore {
		t.Error("no deliveries after repair")
	}
	if b.nw.Stats().EnforcementErrors != 0 {
		t.Errorf("errors after repair: %+v", b.nw.Stats())
	}
}

// TestSoakEverythingAtOnce drives the full machinery in one long
// simulation: label switching on, periodic soft-state sweeps, a
// mid-run rebalance from live measurements, and a middlebox
// failure + repair — then checks conservation: every injected packet is
// delivered, served locally, or policy-dropped; none vanish.
func TestSoakEverythingAtOnce(t *testing.T) {
	b := newSimBed(t, controller.Options{
		Strategy:       enforce.LoadBalanced,
		LabelSwitching: true,
		FlowTTL:        5_000_000,
		LabelTTL:       5_000_000,
		HashSeed:       9,
	})
	rng := rand.New(rand.NewSource(99))

	inject := func(start int64, flows int) {
		for i := 0; i < flows; i++ {
			src := 1 + rng.Intn(3)
			dst := 1 + rng.Intn(2)
			if dst >= src {
				dst++
			}
			ft := flowTuple(src, dst, 80, uint16(rng.Intn(50000)))
			if err := b.nw.InjectFlow(ft, 2+rng.Intn(6), 400, start+int64(i)*40, 900); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: traffic under uniform weights.
	inject(0, 120)
	b.nw.Run(0)

	// Rebalance from live measurements.
	meas := controller.Collect(b.nodes)
	sol, err := b.ctl.SolveLB(meas)
	if err != nil {
		t.Fatal(err)
	}
	controller.ApplyWeights(b.nodes, sol)

	// Periodic sweeps plus phase 2 traffic.
	for _, n := range b.nodes {
		n.Sweep(b.nw.Engine.Now())
	}
	inject(b.nw.Engine.Now()+1000, 120)
	b.nw.Run(0)

	// Fail the hottest firewall mid-run, repair, then phase 3.
	var hot topo.NodeID = topo.InvalidNode
	var hotLoad int64 = -1
	for _, id := range b.dep.Providers(policy.FuncFW) {
		if l := b.nodes[id].Counters.Load; l > hotLoad {
			hot, hotLoad = id, l
		}
	}
	if err := b.ctl.MarkFailed(hot, true); err != nil {
		t.Fatal(err)
	}
	if err := b.ctl.Reassign(b.nodes); err != nil {
		t.Fatal(err)
	}
	inject(b.nw.Engine.Now()+1000, 120)
	b.nw.Run(0)

	s := b.nw.Stats()
	if s.EnforcementErrors != 0 {
		t.Errorf("enforcement errors: %+v", s)
	}
	accounted := s.Delivered + s.ServedLocally + s.DroppedPolicy + s.DroppedTTL + s.DroppedNoRoute + s.Misdelivered
	// Label misses (soft-state races around the failure) also consume
	// packets; count them from the nodes.
	var labelMisses int64
	for _, n := range b.nodes {
		labelMisses += n.Counters.LabelMiss
	}
	accounted += labelMisses
	if accounted != s.PacketsInjected {
		t.Errorf("packet conservation broken: injected %d, accounted %d (%+v, labelMisses=%d)",
			s.PacketsInjected, accounted, s, labelMisses)
	}
	if s.Delivered == 0 {
		t.Error("soak delivered nothing")
	}
	if got := b.nodes[hot].Counters.Load; got != hotLoad {
		t.Errorf("failed firewall gained load after repair: %d -> %d", hotLoad, got)
	}
}
