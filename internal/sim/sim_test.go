package sim_test

import (
	"math/rand"
	"testing"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/nf"
	"sdme/internal/ospf"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/sim"
	"sdme/internal/topo"
)

func TestEngineOrdering(t *testing.T) {
	e := sim.NewEngine()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	// Ties run FIFO.
	e.After(10, func() { got = append(got, 11) })
	if n := e.Run(0); n != 4 {
		t.Fatalf("processed %d events", n)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := sim.NewEngine()
	ran := 0
	e.After(5, func() { ran++ })
	e.After(50, func() { ran++ })
	if n := e.Run(10); n != 1 || ran != 1 {
		t.Fatalf("Run(10) processed %d", n)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run(0)
	if ran != 2 {
		t.Error("drain did not run remaining events")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := sim.NewEngine()
	hits := 0
	e.After(1, func() {
		e.After(1, func() { hits++ })
	})
	e.Run(0)
	if hits != 1 {
		t.Error("nested event did not run")
	}
	if e.Events() != 2 {
		t.Errorf("Events = %d", e.Events())
	}
}

// simBed is a full simulation testbed over a small campus.
type simBed struct {
	g     *topo.Graph
	dep   *enforce.Deployment
	ap    *route.AllPairs
	dom   *ospf.Domain
	tbl   *policy.Table
	ctl   *controller.Controller
	nodes map[topo.NodeID]*enforce.Node
	nw    *sim.Network
}

func newSimBed(t *testing.T, opts controller.Options) *simBed {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	cfg := topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 3, WithProxies: true}
	g := topo.Campus(cfg, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[2], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)
	dep.AddMiddlebox(cores[3], "ids2", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	dom := ospf.NewDomain(g)
	dom.Converge()
	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	if opts.K == nil {
		opts.K = map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 2}
	}
	ctl := controller.New(dep, ap, tbl, opts)
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	return &simBed{
		g: g, dep: dep, ap: ap, dom: dom, tbl: tbl, ctl: ctl, nodes: nodes,
		nw: sim.New(g, dom, dep, nodes),
	}
}

func flowTuple(src, dst int, port uint16, n uint16) netaddr.FiveTuple {
	return netaddr.FiveTuple{
		Src: topo.HostAddr(src, 1+int(n)%100), Dst: topo.HostAddr(dst, 1+int(n)%100),
		SrcPort: 20000 + n, DstPort: port, Proto: netaddr.ProtoTCP,
	}
}

func TestEndToEndDelivery(t *testing.T) {
	b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato})
	ft := flowTuple(1, 2, 80, 1)
	if err := b.nw.InjectFlow(ft, 10, 512, 0, 100); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	s := b.nw.Stats()
	if s.PacketsInjected != 10 {
		t.Errorf("injected = %d", s.PacketsInjected)
	}
	if s.Delivered != 10 {
		t.Errorf("delivered = %d of 10 (stats %+v)", s.Delivered, s)
	}
	if s.EnforcementErrors != 0 || s.DroppedNoRoute != 0 || s.DroppedTTL != 0 {
		t.Errorf("failures: %+v", s)
	}
	// Each packet crossed one FW and one IDS.
	loads := b.nw.MiddleboxLoads()
	var fw, ids int64
	for _, id := range b.dep.Providers(policy.FuncFW) {
		fw += loads[id]
	}
	for _, id := range b.dep.Providers(policy.FuncIDS) {
		ids += loads[id]
	}
	if fw != 10 || ids != 10 {
		t.Errorf("fw=%d ids=%d, want 10 each", fw, ids)
	}
	if s.PacketHops == 0 {
		t.Error("no router hops counted")
	}
}

func TestUnmatchedFlowBypassesMiddleboxes(t *testing.T) {
	b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato})
	if err := b.nw.InjectFlow(flowTuple(1, 3, 9999, 1), 5, 256, 0, 10); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	if got := b.nw.Stats().Delivered; got != 5 {
		t.Errorf("delivered = %d", got)
	}
	for id, l := range b.nw.MiddleboxLoads() {
		if l != 0 {
			t.Errorf("middlebox %v loaded %d by permit traffic", id, l)
		}
	}
}

func TestNoRouteDrop(t *testing.T) {
	b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato})
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: netaddr.MustParseAddr("203.0.113.7"),
		SrcPort: 20000, DstPort: 9999, Proto: netaddr.ProtoTCP,
	}
	if err := b.nw.InjectFlow(ft, 3, 100, 0, 10); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	if got := b.nw.Stats().DroppedNoRoute; got != 3 {
		t.Errorf("DroppedNoRoute = %d, want 3", got)
	}
}

func TestSimMatchesEvaluatorLoads(t *testing.T) {
	// The packet-level simulator and the analytic evaluator must agree
	// on per-middlebox loads (the property DESIGN.md leans on).
	opts := controller.Options{Strategy: enforce.Random, HashSeed: 31}
	b := newSimBed(t, opts)
	rng := rand.New(rand.NewSource(8))

	var demands []enforce.FlowDemand
	for i := 0; i < 40; i++ {
		src := 1 + rng.Intn(3)
		dst := 1 + rng.Intn(2)
		if dst >= src {
			dst++
		}
		ft := flowTuple(src, dst, 80, uint16(rng.Intn(30000)))
		pkts := 1 + rng.Intn(6)
		demands = append(demands, enforce.FlowDemand{Tuple: ft, Packets: int64(pkts)})
		if err := b.nw.InjectFlow(ft, pkts, 200, int64(i)*50, 25); err != nil {
			t.Fatal(err)
		}
	}
	b.nw.Run(0)
	simLoads := b.nw.MiddleboxLoads()

	nodes2, err := b.ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	report, err := enforce.EvaluateFlows(nodes2, b.dep, b.ap, demands)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range b.dep.MBNodes {
		if simLoads[id] != report.Loads[id] {
			t.Errorf("middlebox %v: sim %d vs evaluator %d", id, simLoads[id], report.Loads[id])
		}
	}
}

func TestLabelSwitchingInSim(t *testing.T) {
	b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato, LabelSwitching: true})
	ft := flowTuple(1, 2, 80, 7)
	// Space packets out enough that the control message returns before
	// the second packet leaves.
	if err := b.nw.InjectFlow(ft, 5, 512, 0, 5000); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	s := b.nw.Stats()
	if s.Delivered != 5 {
		t.Fatalf("delivered = %d (stats %+v)", s.Delivered, s)
	}
	if s.ControlMessages != 1 {
		t.Errorf("controls = %d, want 1", s.ControlMessages)
	}
	// First packet tunneled (+20B overhead), rest label-switched: bytes
	// delivered are identical (label switching restores the original
	// packet), but the proxy's counters tell the story.
	srcProxy, _ := b.dep.ProxyFor(1)
	c := b.nodes[srcProxy].Counters
	if c.TunnelTx != 1 || c.LabelTx != 4 {
		t.Errorf("proxy counters: tunnel=%d label=%d", c.TunnelTx, c.LabelTx)
	}
}

func TestFragmentationAvoidedByLabelSwitching(t *testing.T) {
	// Packets sized exactly at the MTU: IP-over-IP pushes them over
	// (fragmentation), label-switched packets fit. This is the §III-E
	// claim, measured.
	run := func(labelSwitching bool) sim.Stats {
		b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato, LabelSwitching: labelSwitching})
		ft := flowTuple(1, 2, 80, 9)
		if err := b.nw.InjectFlow(ft, 6, 1480, 0, 5000); err != nil {
			t.Fatal(err)
		}
		b.nw.Run(0)
		return b.nw.Stats()
	}
	plain := run(false)
	labeled := run(true)
	if plain.FragmentsCreated == 0 {
		t.Fatalf("tunneled oversize packets did not fragment: %+v", plain)
	}
	if labeled.FragmentsCreated >= plain.FragmentsCreated {
		t.Errorf("label switching did not reduce fragmentation: %d vs %d",
			labeled.FragmentsCreated, plain.FragmentsCreated)
	}
	// Only the first (tunneled) packet of the flow fragments under label
	// switching.
	if labeled.Delivered != 6 || plain.Delivered != 6 {
		t.Errorf("deliveries: plain %d, labeled %d", plain.Delivered, labeled.Delivered)
	}
}

func TestReconvergenceKeepsEnforcementWorking(t *testing.T) {
	b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato})
	// Fail one core-gateway link and re-converge; traffic must still be
	// enforced and delivered over the new paths.
	var failed bool
	for i := 0; i < b.g.NumLinks(); i++ {
		l := b.g.Link(i)
		if b.g.Node(l.A).Kind == topo.KindCoreRouter && b.g.Node(l.B).Kind == topo.KindGateway {
			b.dom.FailLink(i)
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("no core-gateway link found")
	}
	b.dom.Converge()

	if err := b.nw.InjectFlow(flowTuple(1, 2, 80, 3), 5, 512, 0, 100); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	s := b.nw.Stats()
	if s.Delivered != 5 || s.DroppedNoRoute != 0 {
		t.Errorf("after failover: %+v", s)
	}
}

func TestFirewallDropCountsInSim(t *testing.T) {
	b := newSimBed(t, controller.Options{Strategy: enforce.HotPotato})
	deny := policy.NewDescriptor()
	deny.Src = topo.SubnetPrefix(1)
	for _, id := range b.dep.Providers(policy.FuncFW) {
		fw := b.nodes[id].Funcs[policy.FuncFW].(*nf.Firewall)
		fw.AddRule(nf.FirewallRule{Desc: deny, Action: nf.Deny})
	}
	if err := b.nw.InjectFlow(flowTuple(1, 2, 80, 4), 4, 256, 0, 10); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	s := b.nw.Stats()
	if s.DroppedPolicy != 4 {
		t.Errorf("DroppedPolicy = %d, want 4", s.DroppedPolicy)
	}
	if s.Delivered != 0 {
		t.Errorf("denied packets delivered: %d", s.Delivered)
	}
}

func TestOffPathProxyLoopbackAccounting(t *testing.T) {
	// Same deployment, off-path proxies: traffic still enforced and
	// delivered, with one loopback accounted per outbound packet.
	rng := rand.New(rand.NewSource(5))
	g := topo.Campus(topo.CampusConfig{
		Gateways: 2, CoreRouters: 4, EdgeRouters: 3,
		WithProxies: true, OffPathProxies: true,
	}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	dom := ospf.NewDomain(g)
	dom.Converge()
	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{Strategy: enforce.HotPotato})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(g, dom, dep, nodes)
	if err := nw.InjectFlow(flowTuple(1, 2, 80, 1), 7, 256, 0, 50); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	s := nw.Stats()
	if s.Delivered != 7 {
		t.Errorf("delivered = %d (stats %+v)", s.Delivered, s)
	}
	if s.ProxyLoopbacks != 7 {
		t.Errorf("ProxyLoopbacks = %d, want 7", s.ProxyLoopbacks)
	}
}

func TestLabelSoftStateExpiryMidFlow(t *testing.T) {
	// Tight label TTL: label entries expire between packets, so
	// label-switched packets arrive at middleboxes with no matching
	// entry and are counted as label misses (the §III-E soft-state
	// failure mode), without crashing enforcement.
	b := newSimBed(t, controller.Options{
		Strategy:       enforce.HotPotato,
		LabelSwitching: true,
		LabelTTL:       2000, // µs; far shorter than the packet gap below
	})
	ft := flowTuple(1, 2, 80, 5)
	if err := b.nw.InjectFlow(ft, 4, 256, 0, 50000); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	var misses int64
	for _, id := range b.dep.MBNodes {
		misses += b.nodes[id].Counters.LabelMiss
	}
	if misses == 0 {
		t.Error("expected label misses with a tight label TTL")
	}
	if b.nw.Stats().Delivered == 0 {
		t.Error("nothing delivered at all")
	}
}

func TestFlowSoftStateExpiryReclassifies(t *testing.T) {
	// Tight flow TTL: the proxy's flow entry dies between packets and
	// the next packet is classified again (and, with label switching
	// off, correctly re-tunneled).
	b := newSimBed(t, controller.Options{
		Strategy: enforce.HotPotato,
		FlowTTL:  2000,
	})
	ft := flowTuple(1, 2, 80, 6)
	if err := b.nw.InjectFlow(ft, 3, 256, 0, 50000); err != nil {
		t.Fatal(err)
	}
	b.nw.Run(0)
	proxyID, _ := b.dep.ProxyFor(1)
	if got := b.nodes[proxyID].Counters.Classified; got != 3 {
		t.Errorf("classifications = %d, want 3 (every packet after expiry)", got)
	}
	if b.nw.Stats().Delivered != 3 {
		t.Errorf("delivered = %d", b.nw.Stats().Delivered)
	}
}

func TestBandwidthTransmissionDelay(t *testing.T) {
	// Two routers joined by a slow link: arrival time must include the
	// serialization delay size*8/bw on top of propagation.
	g := topo.NewGraph()
	a := g.AddNode(topo.Node{Name: "a", Kind: topo.KindEdgeRouter, Attach: topo.InvalidNode,
		Addr: netaddr.MustParseAddr("172.16.1.1"), Subnet: topo.SubnetPrefix(1)})
	bNode := g.AddNode(topo.Node{Name: "b", Kind: topo.KindEdgeRouter, Attach: topo.InvalidNode,
		Addr: netaddr.MustParseAddr("172.16.1.2"), Subnet: topo.SubnetPrefix(2)})
	g.AddLink(topo.Link{A: a, B: bNode, DelayUS: 1000, BandwidthBPS: 1_000_000}) // 1 Mbps
	prx := topo.AttachProxy(g, a, 1)
	_ = topo.AttachProxy(g, bNode, 2)

	dep, err := enforce.NewDeployment(g)
	if err != nil {
		t.Fatal(err)
	}
	tbl := policy.NewTable() // no policies: plain forwarding
	dom := ospf.NewDomain(g)
	dom.Converge()
	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{Strategy: enforce.HotPotato})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(g, dom, dep, nodes)
	_ = prx

	// 1000-byte payload => 1020B on the wire => 8160 bits / 1 Mbps =
	// 8160us serialization + 1000us propagation on the a-b link, plus
	// the 20us proxy and delivery device links.
	ft := netaddr.FiveTuple{Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 1), DstPort: 9, Proto: netaddr.ProtoUDP}
	if err := nw.InjectFlow(ft, 1, 1000, 0, 0); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	if nw.Stats().Delivered != 1 {
		t.Fatalf("not delivered: %+v", nw.Stats())
	}
	if now := nw.Engine.Now(); now < 9180 || now > 9500 {
		t.Errorf("delivery at %dus, want ≈9200us (propagation+serialization)", now)
	}
}
