package sim

import (
	"sdme/internal/enforce"
	"sdme/internal/metrics"
)

// Substrate-level metric family names. The sdme_node_* / sdme_func_*
// families come from the shared enforce dataplane (enforce/observe.go)
// and are emitted identically by sim and live; the families below are
// network-path measurements that currently only the simulator can take.
const (
	MetricInjected   = "sdme_packets_injected_total"
	MetricDelivered  = "sdme_packets_delivered_total"
	MetricE2ELatency = "sdme_e2e_latency_us"
	MetricPathHops   = "sdme_path_hops"
	MetricHopLatency = "sdme_hop_latency_us"
	MetricQueueDelay = "sdme_queue_delay_us"
)

// simMetrics caches the network's registry handles.
type simMetrics struct {
	reg       *metrics.Registry
	injected  *metrics.Counter
	delivered *metrics.Counter
	e2e       *metrics.Histogram
	hops      *metrics.Histogram
	hopLat    *metrics.Histogram
	queue     *metrics.Histogram
}

// NewRegistry creates a metrics registry driven by this network's
// virtual clock, so snapshots are stamped with simulation time and two
// same-seed runs produce byte-identical output.
func (nw *Network) NewRegistry() *metrics.Registry {
	return metrics.NewRegistry(func() int64 { return nw.Engine.Now() })
}

// AttachMetrics wires a registry into the network and every enforcement
// node: the dataplane families (per-node, per-func) plus the simulator's
// path measurements — end-to-end latency, per-link hop latency, path hop
// counts and middlebox queueing delay. nil detaches.
func (nw *Network) AttachMetrics(reg *metrics.Registry) {
	for _, n := range nw.nodes {
		n.SetMetrics(reg)
	}
	if reg == nil {
		nw.m = nil
		return
	}
	nw.m = &simMetrics{
		reg:       reg,
		injected:  reg.Counter(MetricInjected),
		delivered: reg.Counter(MetricDelivered),
		e2e:       reg.Histogram(MetricE2ELatency, metrics.LatencyBucketsUS),
		hops:      reg.Histogram(MetricPathHops, metrics.HopBuckets),
		hopLat:    reg.Histogram(MetricHopLatency, metrics.LatencyBucketsUS),
		queue:     reg.Histogram(MetricQueueDelay, metrics.LatencyBucketsUS),
	}
	reg.SetHelp(MetricE2ELatency, "end-to-end delivery latency of injected data packets")
	reg.SetHelp(MetricPathHops, "router-to-router transmissions per delivered packet")
}

// Registry returns the attached registry (nil if none).
func (nw *Network) Registry() *metrics.Registry {
	if nw.m == nil {
		return nil
	}
	return nw.m.reg
}

// SetTracer attaches a runtime tracer to every enforcement node (and to
// the network itself for queue events). nil detaches.
func (nw *Network) SetTracer(t *enforce.RuntimeTracer) {
	nw.tracer = t
	for _, n := range nw.nodes {
		n.SetTracer(t)
	}
}

// SnapshotEvery schedules periodic registry snapshots at virtual times
// every, 2·every, … up to and including until (both in microseconds).
// The horizon is required so Run(0) can still drain the event queue; the
// snapshots are retrievable via Snapshots after the run.
func (nw *Network) SnapshotEvery(every, until int64) {
	if nw.m == nil || every <= 0 {
		return
	}
	for at := every; at <= until; at += every {
		nw.Engine.After(at-nw.Engine.Now(), func() {
			nw.snaps = append(nw.snaps, nw.m.reg.Snapshot())
		})
	}
}

// Snapshots returns the snapshots taken so far, in virtual-time order.
func (nw *Network) Snapshots() []metrics.Snapshot {
	return append([]metrics.Snapshot(nil), nw.snaps...)
}
