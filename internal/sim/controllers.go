package sim

import (
	"fmt"
	"path/filepath"

	"sdme/internal/controller"
	"sdme/internal/metrics"
	"sdme/internal/mgmt"
)

// ControllerGroup hosts N replicated-controller replicas (DESIGN §11)
// on the engine's virtual clock: election timeouts, heartbeats, and
// journal-frame deliveries are all engine events, so a whole takeover
// history — leader kill, election, catch-up, fenced resumption — is a
// deterministic function of the seed. Peer envelopes travel with a
// fixed virtual latency and are silently lost to dead or partitioned
// endpoints, which is exactly the loss model the lease protocol is
// built to tolerate.

// Promotion records one leadership win, for takeover traces and the
// at-most-one-leader-per-term property test.
type Promotion struct {
	ID   int
	Term uint64
	AtUS int64
}

// ControllerGroupConfig sizes a replica group.
type ControllerGroupConfig struct {
	// N is the replica count (default 3).
	N int
	// Dir holds the per-replica journal files (replica-<id>.wal).
	Dir string
	// LeaseUS / HeartbeatUS are the election timings in virtual µs
	// (defaults per controller.ElectorConfig).
	LeaseUS, HeartbeatUS int64
	// Seed drives every replica's election jitter; replica i draws from
	// seed Seed*1009 + i + 1 so groups with different seeds diverge.
	Seed int64
	// DelayUS is the one-way peer envelope latency (default 200 µs).
	DelayUS int64
	// Quorum for both election and replication; 0 = majority.
	Quorum  int
	Metrics *metrics.Registry
	// OnPromote/OnDemote are the harness hooks, running synchronously
	// inside the engine event that resolved the election.
	OnPromote func(id int, st *controller.JournalState, j *controller.Journal, term uint64)
	OnDemote  func(id int, term uint64)
}

func (c *ControllerGroupConfig) fill() {
	if c.N <= 0 {
		c.N = 3
	}
	if c.DelayUS <= 0 {
		c.DelayUS = 200
	}
}

// ControllerGroup is the sim-side host of N HAReplicas.
type ControllerGroup struct {
	eng      *Engine
	cfg      ControllerGroupConfig
	replicas []*controller.HAReplica
	dead     []bool
	cut      map[[2]int]bool

	promotions []Promotion
}

// NewControllerGroup builds and starts N replicas, all standby; run the
// engine to let the first election resolve.
func NewControllerGroup(eng *Engine, cfg ControllerGroupConfig) (*ControllerGroup, error) {
	cfg.fill()
	g := &ControllerGroup{
		eng:  eng,
		cfg:  cfg,
		dead: make([]bool, cfg.N),
		cut:  make(map[[2]int]bool),
	}
	for id := 0; id < cfg.N; id++ {
		peers := make([]int, 0, cfg.N-1)
		for p := 0; p < cfg.N; p++ {
			if p != id {
				peers = append(peers, p)
			}
		}
		id := id
		ha, err := controller.NewHAReplica(controller.HAReplicaConfig{
			ID:          id,
			Peers:       peers,
			Quorum:      cfg.Quorum,
			JournalPath: filepath.Join(cfg.Dir, fmt.Sprintf("replica-%d.wal", id)),
			Transport:   groupTransport{g: g, from: id},
			LeaseUS:     cfg.LeaseUS,
			HeartbeatUS: cfg.HeartbeatUS,
			Seed:        cfg.Seed*1009 + int64(id) + 1,
			Clock:       simClock{eng: eng},
			Metrics:     cfg.Metrics,
			OnPromote: func(st *controller.JournalState, j *controller.Journal, term uint64) {
				g.promotions = append(g.promotions, Promotion{ID: id, Term: term, AtUS: eng.Now()})
				if cfg.OnPromote != nil {
					cfg.OnPromote(id, st, j, term)
				}
			},
			OnDemote: func(term uint64) {
				if cfg.OnDemote != nil {
					cfg.OnDemote(id, term)
				}
			},
		})
		if err != nil {
			for _, prev := range g.replicas {
				prev.Stop()
			}
			return nil, err
		}
		g.replicas = append(g.replicas, ha)
	}
	for _, ha := range g.replicas {
		ha.Start()
	}
	return g, nil
}

// Replica returns one replica's HAReplica.
func (g *ControllerGroup) Replica(id int) *controller.HAReplica { return g.replicas[id] }

// N returns the replica count.
func (g *ControllerGroup) N() int { return len(g.replicas) }

// Alive reports whether a replica has not been killed.
func (g *ControllerGroup) Alive(id int) bool { return !g.dead[id] }

// Promotions returns every leadership win so far, in virtual-time order.
func (g *ControllerGroup) Promotions() []Promotion {
	return append([]Promotion(nil), g.promotions...)
}

// Kill crashes a replica: its elector stops, its journals close, and
// every envelope to or from it is dropped from now on.
func (g *ControllerGroup) Kill(id int) {
	if g.dead[id] {
		return
	}
	g.dead[id] = true
	g.replicas[id].Stop()
}

// SetPartitioned severs (or heals) the pair's peer link, both ways.
func (g *ControllerGroup) SetPartitioned(a, b int, cut bool) {
	g.cut[pairKey(a, b)] = cut
}

// Leader returns the live replica currently in the leader role with the
// highest term, or (-1, 0) when none leads.
func (g *ControllerGroup) Leader() (id int, term uint64) {
	id = -1
	for i, ha := range g.replicas {
		if g.dead[i] {
			continue
		}
		e := ha.Elector()
		if e.Role() == controller.RoleLeader && e.Term() >= term {
			id, term = i, e.Term()
		}
	}
	return id, term
}

// RunUntilLeader advances the engine until some live replica leads (and,
// when minTerm > 0, at a term >= minTerm — takeover, not the old
// incumbent), returning the leader and the virtual time it was observed.
// id -1 means the limit passed first.
func (g *ControllerGroup) RunUntilLeader(limitUS int64, minTerm uint64) (id int, term uint64, atUS int64) {
	step := g.cfg.LeaseUS
	if step <= 0 {
		step = 150_000
	}
	step /= 10
	if step <= 0 {
		step = 1
	}
	// Walk a cursor, not eng.Now(): Run only advances the clock to the
	// last processed event, so an empty step must still move the cursor.
	cursor := g.eng.Now()
	for {
		if id, term = g.Leader(); id >= 0 && term >= minTerm {
			return id, term, g.eng.Now()
		}
		if cursor >= limitUS {
			return -1, 0, g.eng.Now()
		}
		cursor += step
		g.eng.Run(cursor)
	}
}

// Close stops every replica.
func (g *ControllerGroup) Close() {
	for id := range g.replicas {
		g.Kill(id)
	}
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// groupTransport carries one replica's peer envelopes through the
// engine queue.
type groupTransport struct {
	g    *ControllerGroup
	from int
}

func (t groupTransport) Send(to int, env *mgmt.Envelope) error {
	g := t.g
	if to < 0 || to >= len(g.replicas) {
		return fmt.Errorf("sim: no replica %d", to)
	}
	if g.dead[t.from] || g.dead[to] || g.cut[pairKey(t.from, to)] {
		return nil // silently lost; the protocols retry by timeout
	}
	// Copy the payload: the engine delivers later and the sender may
	// reuse its buffer.
	e := &mgmt.Envelope{T: env.T, Data: append([]byte(nil), env.Data...)}
	from := t.from
	g.eng.After(g.cfg.DelayUS, func() {
		if g.dead[to] || g.dead[from] || g.cut[pairKey(from, to)] {
			return
		}
		g.replicas[to].Deliver(e)
	})
	return nil
}

// simClock adapts the engine to controller.ElectionClock. Cancellation
// is a flag check at fire time — the engine has no event removal, and
// the elector revalidates state in every callback anyway.
type simClock struct{ eng *Engine }

func (c simClock) NowUS() int64 { return c.eng.Now() }

func (c simClock) AfterUS(delayUS int64, fn func()) func() {
	cancelled := false
	c.eng.After(delayUS, func() {
		if !cancelled {
			fn()
		}
	})
	return func() { cancelled = true }
}
