// Package sim is a discrete-event network simulator — the substrate this
// reproduction uses in place of the paper's OMNET++/INET platform (§IV).
// Routers forward packets hop by hop using their own converged OSPF
// tables (internal/ospf), links impose propagation and transmission
// delays and MTU limits, and the enforcement nodes (internal/enforce)
// run their dataplane logic on packets addressed to them.
//
// Time is int64 microseconds of virtual time.
package sim

import (
	"container/heap"
)

// Engine is a deterministic discrete-event scheduler.
type Engine struct {
	now    int64
	seq    int64
	queue  eventQueue
	events int64
}

type event struct {
	at  int64
	seq int64 // FIFO among simultaneous events
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in microseconds.
func (e *Engine) Now() int64 { return e.now }

// Events returns the number of events processed so far.
func (e *Engine) Events() int64 { return e.events }

// After schedules fn to run delay microseconds from now. Negative delays
// are clamped to zero (run "immediately", after already-queued events at
// the current instant).
func (e *Engine) After(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue drains or virtual time would pass
// `until` (inclusive; until <= 0 means run to drain). It returns the
// number of events processed by this call.
func (e *Engine) Run(until int64) int64 {
	var n int64
	for e.queue.Len() > 0 {
		if until > 0 && e.queue[0].at > until {
			break
		}
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		ev.fn()
		n++
		e.events++
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
