package sim

import (
	"fmt"

	"sdme/internal/enforce"
	"sdme/internal/metrics"
	"sdme/internal/netaddr"
	"sdme/internal/ospf"
	"sdme/internal/packet"
	"sdme/internal/topo"
)

// Stats aggregates network-level simulation counters.
type Stats struct {
	PacketsInjected int64
	Delivered       int64
	DeliveredBytes  int64
	// ServedLocally counts packets answered by a web-proxy cache hit and
	// DroppedPolicy packets denied by a firewall (both terminate inside
	// the network by design).
	ServedLocally int64
	DroppedPolicy int64
	// DroppedTTL / DroppedNoRoute are forwarding failures.
	DroppedTTL     int64
	DroppedNoRoute int64
	// Misdelivered counts data packets that landed on a device that
	// could not handle them.
	Misdelivered int64
	// DroppedDown counts packets that arrived at (or were injected
	// through) a device marked down via SetNodeDown — the blackhole a
	// crashed middlebox or proxy creates until the controller repairs the
	// plan. Recovery experiments read outage cost off this counter.
	DroppedDown int64
	// PacketHops counts router-to-router transmissions (fragment copies
	// included) — a network-wide work measure.
	PacketHops int64
	// FragmentsCreated counts extra packets created by MTU fragmentation
	// (k fragments of one packet count k-1); Reassemblies counts
	// reassembly operations at middleboxes and destinations. The §III-E
	// ablation drives these to zero with label switching.
	FragmentsCreated int64
	Reassemblies     int64
	// ControlMessages counts §III-E control packets.
	ControlMessages int64
	// ProxyLoopbacks counts the router→proxy→router round trips paid by
	// off-path proxies (§III-A): one per outbound packet from a subnet
	// whose proxy is deployed off-path.
	ProxyLoopbacks int64
	// EnforcementErrors counts dataplane errors (no provider, label
	// miss, misdirection).
	EnforcementErrors int64
	// QueueDelayTotalUS / QueueDelayMaxUS aggregate middlebox queueing
	// (only when service rates are set via SetServiceRate): the time
	// packets wait for a busy middlebox. This is what the paper's load
	// factor λ > 1 means physically.
	QueueDelayTotalUS int64
	QueueDelayMaxUS   int64
	QueuedPackets     int64
	// LatencyTotalUS / LatencyMaxUS / LatencyCount aggregate end-to-end
	// delivery latency of data packets.
	LatencyTotalUS int64
	LatencyMaxUS   int64
	LatencyCount   int64
}

// AvgQueueDelayUS returns the mean middlebox queueing delay.
func (s Stats) AvgQueueDelayUS() float64 {
	if s.QueuedPackets == 0 {
		return 0
	}
	return float64(s.QueueDelayTotalUS) / float64(s.QueuedPackets)
}

// AvgLatencyUS returns the mean end-to-end delivery latency.
func (s Stats) AvgLatencyUS() float64 {
	if s.LatencyCount == 0 {
		return 0
	}
	return float64(s.LatencyTotalUS) / float64(s.LatencyCount)
}

// deviceLinkDelayUS is the delay of the device-to-router link when the
// topology does not specify one.
const deviceLinkDelayUS = 20

// Network binds an engine, a routed topology and the enforcement nodes
// into a runnable simulation.
type Network struct {
	Engine *Engine
	g      *topo.Graph
	dom    *ospf.Domain
	dep    *enforce.Deployment
	nodes  map[topo.NodeID]*enforce.Node
	stats  Stats
	fwd    *simForwarder
	// DeliveredTo records per-destination-address delivered packet
	// counts for tests.
	DeliveredTo map[netaddr.Addr]int64
	// serviceRate models finite middlebox capacity in packets/second;
	// busyUntil tracks each middlebox's queue horizon.
	serviceRate map[topo.NodeID]float64
	busyUntil   map[topo.NodeID]int64
	// born timestamps injected packets for end-to-end latency.
	born map[*packet.Packet]int64
	// down marks crashed devices: packets addressed to them blackhole
	// (DroppedDown) until the node is marked up again.
	down map[topo.NodeID]bool

	// Observability attachments (observe.go); all nil/empty unless
	// AttachMetrics / SetTracer were called.
	m       *simMetrics
	tracer  *enforce.RuntimeTracer
	snaps   []metrics.Snapshot
	pktHops map[*packet.Packet]int64
}

// New assembles a simulation over a converged OSPF domain. The nodes map
// must contain every proxy and middlebox of the deployment.
func New(g *topo.Graph, dom *ospf.Domain, dep *enforce.Deployment, nodes map[topo.NodeID]*enforce.Node) *Network {
	nw := &Network{
		Engine:      NewEngine(),
		g:           g,
		dom:         dom,
		dep:         dep,
		nodes:       nodes,
		DeliveredTo: make(map[netaddr.Addr]int64),
		serviceRate: make(map[topo.NodeID]float64),
		busyUntil:   make(map[topo.NodeID]int64),
		born:        make(map[*packet.Packet]int64),
		down:        make(map[topo.NodeID]bool),
		pktHops:     make(map[*packet.Packet]int64),
	}
	nw.fwd = &simForwarder{nw: nw}
	return nw
}

// Stats returns a copy of the counters.
func (nw *Network) Stats() Stats { return nw.stats }

// SetServiceRate models finite processing capacity at a middlebox:
// packets are served one at a time at `pktsPerSec`; arrivals during
// service queue up (FIFO). Zero removes the limit. The paper's capacity
// C(x) corresponds to this rate; overload (λ > 1) shows up as unbounded
// queueing delay.
func (nw *Network) SetServiceRate(id topo.NodeID, pktsPerSec float64) {
	if pktsPerSec <= 0 {
		delete(nw.serviceRate, id)
		return
	}
	nw.serviceRate[id] = pktsPerSec
}

// SetNodeDown marks a device crashed (or recovered). A down device
// blackholes every packet addressed to it — the network keeps routing
// toward it, exactly as a traditional network would, because routing
// never knew about the middlebox in the first place (§II). Fault
// schedules drive this from faultinject events.
//
// Every other node's liveness view is updated at the same time (the sim
// analogue of the live runtime's health-monitor detection), so
// enforce.SelectNext fails over locally to backup candidates — and on a
// crash, soft state pinned to the dead device is purged immediately
// (enforce.Node.InvalidateProvider) instead of blackholing until TTL.
func (nw *Network) SetNodeDown(id topo.NodeID, down bool) {
	if down {
		nw.down[id] = true
	} else {
		delete(nw.down, id)
	}
	for nid, n := range nw.nodes {
		if nid == id {
			continue
		}
		if n.SetProviderDown(id, down) && down {
			n.InvalidateProvider(id)
		}
	}
}

// NodeDown reports whether a device is currently marked down.
func (nw *Network) NodeDown(id topo.NodeID) bool { return nw.down[id] }

// transit is one packet (or its fragment train) moving through routers.
type transit struct {
	pkt *packet.Packet
	// copies is the current number of fragments the packet travels as
	// (1 = unfragmented). Fragmentation is accounted, and the fragments
	// are logically reassembled at the receiving device; see DESIGN.md.
	copies  int
	deliver func(dev topo.NodeID, now int64)
	subnet  func(addr netaddr.Addr, now int64) // delivery into a stub subnet with no device node
}

// InjectFlow schedules a flow's packets from its source subnet's proxy:
// `packets` packets of `bytes` bytes each, starting at `start`, one every
// `gap` microseconds.
func (nw *Network) InjectFlow(ft netaddr.FiveTuple, packets, bytes int, start, gap int64) error {
	srcSub := nw.dep.SubnetIndexOf(ft.Src)
	proxyID, ok := nw.dep.ProxyFor(srcSub)
	if !ok {
		return fmt.Errorf("sim: flow %v: no proxy for source subnet %d", ft, srcSub)
	}
	proxy := nw.nodes[proxyID]
	if proxy == nil {
		return fmt.Errorf("sim: proxy %v not materialized", proxyID)
	}
	// Off-path proxies (§III-A) cost an extra router→proxy leg before
	// the proxy sees the packet: traffic from the subnet hits the edge
	// router first, which loops it out to the proxy.
	var loopDelay int64
	if nw.g.Node(proxyID).OffPath {
		loopDelay = 2 * deviceLinkDelayUS
	}
	for i := 0; i < packets; i++ {
		at := start + int64(i)*gap + loopDelay
		nw.Engine.After(at-nw.Engine.Now(), func() {
			nw.stats.PacketsInjected++
			if nw.m != nil {
				nw.m.injected.Inc()
			}
			if nw.down[proxyID] {
				// The subnet's proxy is dead: outbound traffic blackholes
				// at the first hop until it recovers.
				nw.stats.DroppedDown++
				return
			}
			if loopDelay > 0 {
				nw.stats.ProxyLoopbacks++
			}
			pkt := packet.New(ft, bytes)
			nw.born[pkt] = nw.Engine.Now()
			if err := proxy.HandleOutbound(pkt, nw.Engine.Now(), nw.fwd); err != nil {
				nw.stats.EnforcementErrors++
			}
		})
	}
	return nil
}

// Run processes events until `until` microseconds (<= 0: drain).
func (nw *Network) Run(until int64) int64 { return nw.Engine.Run(until) }

// simForwarder adapts the network to the enforcement layer.
type simForwarder struct{ nw *Network }

var _ enforce.Forwarder = (*simForwarder)(nil)

func (f *simForwarder) Send(from *enforce.Node, pkt *packet.Packet) {
	nw := f.nw
	tr := &transit{
		pkt:    pkt,
		copies: 1,
		deliver: func(dev topo.NodeID, now int64) {
			nw.deliverData(dev, pkt, now)
		},
		subnet: func(addr netaddr.Addr, now int64) {
			nw.stats.Delivered++
			nw.stats.DeliveredBytes += int64(pkt.Size())
			nw.DeliveredTo[addr]++
			nw.recordLatency(pkt, now)
		},
	}
	nw.leaveDevice(from.ID, tr)
}

func (f *simForwarder) SendControl(from *enforce.Node, to netaddr.Addr, flow netaddr.FiveTuple) {
	nw := f.nw
	nw.stats.ControlMessages++
	// Control messages are small (never fragment) and routed like any
	// packet toward the proxy's address.
	ctrl := packet.New(netaddr.FiveTuple{Src: from.Addr, Dst: to, Proto: netaddr.ProtoUDP}, 20)
	tr := &transit{
		pkt:    ctrl,
		copies: 1,
		deliver: func(dev topo.NodeID, now int64) {
			n := nw.nodes[dev]
			if n == nil || !n.IsProxy {
				nw.stats.Misdelivered++
				return
			}
			n.HandleControl(flow, now)
		},
		subnet: func(netaddr.Addr, int64) { nw.stats.Misdelivered++ },
	}
	nw.leaveDevice(from.ID, tr)
}

// leaveDevice moves a transit from a proxy/middlebox onto its attachment
// router.
func (nw *Network) leaveDevice(dev topo.NodeID, tr *transit) {
	router := nw.g.Node(dev).Attach
	if router == topo.InvalidNode {
		nw.stats.DroppedNoRoute++
		return
	}
	delay := nw.linkDelay(dev, router, tr)
	nw.Engine.After(delay, func() { nw.hop(router, tr) })
}

// hop is one router's forwarding decision for a transit.
func (nw *Network) hop(router topo.NodeID, tr *transit) {
	dst := tr.pkt.OutermostDst()
	rt, ok := nw.dom.Table(router).Lookup(dst)
	if !ok {
		nw.stats.DroppedNoRoute++
		return
	}
	if rt.Local {
		if rt.NextHop == router {
			// Delivery into this router's stub subnet (or to the router
			// itself).
			nw.reassembleAtEdge(tr)
			tr.subnet(dst, nw.Engine.Now())
			return
		}
		delay := nw.linkDelay(router, rt.NextHop, tr)
		nw.Engine.After(delay, func() {
			nw.reassembleAtEdge(tr)
			tr.deliver(rt.NextHop, nw.Engine.Now())
		})
		return
	}

	// Router-to-router forwarding: decrement TTL on the outermost header.
	h := tr.pkt.OutermostHeader()
	if h.TTL <= 1 {
		nw.stats.DroppedTTL++
		return
	}
	h.TTL--
	delay := nw.linkDelay(router, rt.NextHop, tr)
	nw.stats.PacketHops += int64(tr.copies)
	if nw.m != nil {
		nw.m.hopLat.Observe(delay)
		if _, tracked := nw.born[tr.pkt]; tracked {
			nw.pktHops[tr.pkt]++
		}
	}
	nw.Engine.After(delay, func() { nw.hop(rt.NextHop, tr) })
}

// linkDelay computes propagation + transmission delay for the link
// between a and b, applying MTU fragmentation accounting.
func (nw *Network) linkDelay(a, b topo.NodeID, tr *transit) int64 {
	for _, adj := range nw.g.Neighbors(a) {
		if adj.Neighbor != b {
			continue
		}
		l := nw.g.Link(adj.LinkIdx)
		size := tr.pkt.Size()
		if size > l.MTU && l.MTU > packet.HeaderLen {
			// ceil of payload split across (MTU - header) chunks.
			per := l.MTU - packet.HeaderLen
			k := (size - packet.HeaderLen + per - 1) / per
			if k > tr.copies {
				nw.stats.FragmentsCreated += int64(k - tr.copies)
				tr.copies = k
			}
		}
		delay := l.DelayUS
		if delay == 0 {
			delay = deviceLinkDelayUS
		}
		if l.BandwidthBPS > 0 {
			onWire := size + (tr.copies-1)*packet.HeaderLen
			delay += int64(onWire) * 8 * 1e6 / l.BandwidthBPS
		}
		return delay
	}
	// No direct link (should not happen with consistent tables).
	nw.stats.DroppedNoRoute++
	return deviceLinkDelayUS
}

// reassembleAtEdge models reassembly of a fragment train before handing
// the packet to a device or subnet.
func (nw *Network) reassembleAtEdge(tr *transit) {
	if tr.copies > 1 {
		nw.stats.Reassemblies++
		tr.copies = 1
	}
}

// deliverData hands a data packet to the device that owns its outermost
// destination address.
func (nw *Network) deliverData(dev topo.NodeID, pkt *packet.Packet, now int64) {
	if nw.down[dev] {
		nw.stats.DroppedDown++
		return
	}
	kind := nw.g.Node(dev).Kind
	switch kind {
	case topo.KindMiddlebox:
		n := nw.nodes[dev]
		if n == nil {
			nw.stats.Misdelivered++
			return
		}
		// Finite service rate: queue behind the middlebox's backlog.
		if rate, ok := nw.serviceRate[dev]; ok {
			start := now
			if b := nw.busyUntil[dev]; b > start {
				start = b
			}
			service := int64(1e6 / rate)
			if service < 1 {
				service = 1
			}
			nw.busyUntil[dev] = start + service
			wait := start - now
			nw.stats.QueuedPackets++
			nw.stats.QueueDelayTotalUS += wait
			if wait > nw.stats.QueueDelayMaxUS {
				nw.stats.QueueDelayMaxUS = wait
			}
			if nw.m != nil {
				nw.m.queue.Observe(wait)
			}
			// Queue trace: only tunneled packets carry the original tuple
			// in their inner header; labeled ones are rewritten, so skip.
			if nw.tracer != nil && pkt.IsEncapsulated() {
				if ft := pkt.FiveTuple(); nw.tracer.Sampled(ft) {
					nw.tracer.Record(enforce.HopRecord{
						Flow: ft, Node: dev, Event: enforce.HopQueue,
						AtUS: now, WaitUS: wait,
					})
				}
			}
			done := nw.busyUntil[dev]
			nw.Engine.After(done-now, func() {
				nw.processAtMiddlebox(n, pkt, done)
			})
			return
		}
		nw.processAtMiddlebox(n, pkt, now)
	case topo.KindHost:
		nw.stats.Delivered++
		nw.stats.DeliveredBytes += int64(pkt.Size())
		nw.DeliveredTo[nw.g.Node(dev).Addr]++
		nw.recordLatency(pkt, now)
	case topo.KindProxy:
		// Data packets addressed to a proxy indicate a config error.
		nw.stats.Misdelivered++
	default:
		nw.stats.Misdelivered++
	}
}

// processAtMiddlebox runs the dataplane on a packet that has cleared the
// middlebox's (possibly queued) service.
func (nw *Network) processAtMiddlebox(n *enforce.Node, pkt *packet.Packet, now int64) {
	before := n.Counters
	if err := n.HandleArrival(pkt, now, nw.fwd); err != nil {
		nw.stats.EnforcementErrors++
		return
	}
	after := n.Counters
	nw.stats.DroppedPolicy += after.Dropped - before.Dropped
	nw.stats.ServedLocally += after.Served - before.Served
}

// recordLatency closes a packet's end-to-end timing if it was injected
// through InjectFlow.
func (nw *Network) recordLatency(pkt *packet.Packet, now int64) {
	bornAt, ok := nw.born[pkt]
	if !ok {
		return
	}
	delete(nw.born, pkt)
	lat := now - bornAt
	nw.stats.LatencyCount++
	nw.stats.LatencyTotalUS += lat
	if lat > nw.stats.LatencyMaxUS {
		nw.stats.LatencyMaxUS = lat
	}
	if nw.m != nil {
		nw.m.delivered.Inc()
		nw.m.e2e.Observe(lat)
		nw.m.hops.Observe(nw.pktHops[pkt])
		delete(nw.pktHops, pkt)
	}
}

// MiddleboxLoads reports each middlebox's processed-packet count — the
// same metric the flow-level evaluator computes, enabling cross-checks.
func (nw *Network) MiddleboxLoads() map[topo.NodeID]int64 {
	out := make(map[topo.NodeID]int64, len(nw.dep.MBNodes))
	for _, id := range nw.dep.MBNodes {
		if n := nw.nodes[id]; n != nil {
			out[id] = n.Counters.Load
		}
	}
	return out
}
