package lp_test

import (
	"fmt"

	"sdme/internal/lp"
)

// Example demonstrates the solver on a miniature of the controller's
// load-balancing problem: split a demand of 12 across two middleboxes
// with capacities 8 and 4 so the maximum load factor λ is minimal.
func Example() {
	p := lp.NewProblem()
	t1 := p.AddVar("t1")         // traffic to middlebox 1
	t2 := p.AddVar("t2")         // traffic to middlebox 2
	lambda := p.AddVar("lambda") // max load factor
	p.SetObjective(lambda, 1)

	p.AddConstraint(lp.Eq, 12, lp.Term{Var: t1, Coef: 1}, lp.Term{Var: t2, Coef: 1})
	p.AddConstraint(lp.Le, 0, lp.Term{Var: t1, Coef: 1}, lp.Term{Var: lambda, Coef: -8})
	p.AddConstraint(lp.Le, 0, lp.Term{Var: t2, Coef: 1}, lp.Term{Var: lambda, Coef: -4})

	sol, err := p.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("status: %v\n", sol.Status)
	fmt.Printf("lambda: %.2f\n", sol.Objective)
	fmt.Printf("split: %.0f / %.0f\n", sol.Value(t1), sol.Value(t2))
	// Output:
	// status: optimal
	// lambda: 1.00
	// split: 8 / 4
}
