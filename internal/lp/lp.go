// Package lp is a self-contained linear-programming solver (two-phase
// primal simplex on a dense tableau) used by the controller to solve the
// paper's load-balancing optimizations, Eq. (1) and Eq. (2). The module is
// stdlib-only by project constraint, so the solver is written here rather
// than imported.
//
// Problems are stated as
//
//	minimize    c·x
//	subject to  a_i·x (<=|=|>=) b_i   for each constraint i
//	            x >= 0
//
// which is exactly the shape of the paper's formulations (all decision
// variables t(...) are non-negative traffic volumes).
//
// The implementation favors clarity and numerical robustness over raw
// speed: Dantzig pricing with a Bland's-rule fallback against cycling,
// explicit tolerance handling, and artificial-variable cleanup between
// phases. Controller-built instances (after the exact reductions
// described in DESIGN.md) stay small enough for a dense tableau.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	Le Op = iota + 1 // a·x <= b
	Eq               // a·x  = b
	Ge               // a·x >= b
)

// String renders the relation.
func (o Op) String() string {
	switch o {
	case Le:
		return "<="
	case Eq:
		return "="
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction. Create with NewProblem,
// add variables and constraints, then Solve.
type Problem struct {
	names       []string
	objective   []float64
	constraints []constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar introduces a non-negative variable and returns its index. The
// name is only for diagnostics.
func (p *Problem) AddVar(name string) int {
	p.names = append(p.names, name)
	p.objective = append(p.objective, 0)
	return len(p.names) - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the cost coefficient of a variable (minimization).
func (p *Problem) SetObjective(v int, coef float64) {
	p.objective[v] = coef
}

// AddConstraint adds a constraint Σ terms (op) rhs. Terms may repeat a
// variable; coefficients accumulate.
func (p *Problem) AddConstraint(op Op, rhs float64, terms ...Term) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	p.constraints = append(p.constraints, constraint{
		terms: append([]Term(nil), terms...),
		op:    op,
		rhs:   rhs,
	})
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds one value per variable added with AddVar.
	X []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Value returns the solution value of variable v.
func (s *Solution) Value(v int) float64 { return s.X[v] }

// ErrIterationLimit is returned when the simplex fails to terminate
// within its iteration budget (should not happen with Bland's fallback;
// kept as a defensive escape hatch).
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const eps = 1e-9

// tableau is the dense simplex working state. Row layout: one row per
// constraint then the objective row. Column layout: structural variables,
// slack/surplus variables, artificial variables, then the RHS column.
type tableau struct {
	rows, cols int // excludes objective row / rhs col in naming below
	a          [][]float64
	basis      []int // basis[r] = column basic in row r
	nArt       int
	artStart   int
	iterations int
}

// Solve runs two-phase simplex and returns the solution.
func (p *Problem) Solve() (*Solution, error) {
	n := len(p.names)
	m := len(p.constraints)

	// Count extra columns.
	nSlack := 0
	for _, c := range p.constraints {
		if c.op != Eq {
			nSlack++
		}
	}
	// Artificial variables: one per row whose canonical form lacks an
	// obvious basic column (Eq and Ge rows, and Le rows with negative rhs
	// after normalization). We allocate pessimistically one per row and
	// use only what we need.
	slackStart := n
	artStart := n + nSlack
	cols := artStart + m // upper bound on artificials
	t := &tableau{
		rows:     m,
		cols:     cols,
		artStart: artStart,
		basis:    make([]int, m),
	}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, cols+1)
	}

	slackIdx := slackStart
	artIdx := artStart
	for i, c := range p.constraints {
		row := t.a[i]
		for _, term := range c.terms {
			row[term.Var] += term.Coef
		}
		row[cols] = c.rhs
		op := c.op
		// Normalize to non-negative rhs.
		if row[cols] < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			switch op {
			case Le:
				op = Ge
			case Ge:
				op = Le
			}
		}
		switch op {
		case Le:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case Ge:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		case Eq:
			row[artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
	}
	t.nArt = artIdx - artStart

	// Phase 1: minimize the sum of artificial variables.
	if t.nArt > 0 {
		obj := t.a[m]
		for j := range obj {
			obj[j] = 0
		}
		for j := artStart; j < artIdx; j++ {
			obj[j] = 1
		}
		// Price out the basic artificial columns.
		for i := 0; i < m; i++ {
			if t.basis[i] >= artStart {
				for j := 0; j <= cols; j++ {
					obj[j] -= t.a[i][j]
				}
			}
		}
		if err := t.iterate(artIdx); err != nil {
			return nil, err
		}
		if phase1 := -t.a[m][cols]; phase1 > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: t.iterations}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: original objective over non-artificial columns.
	obj := t.a[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = p.objective[j]
	}
	for i := 0; i < m; i++ {
		b := t.basis[i]
		if b < artStart && obj[b] != 0 {
			coef := obj[b]
			for j := 0; j <= cols; j++ {
				obj[j] -= coef * t.a[i][j]
			}
		}
	}
	if err := t.iterate(artStart); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded, Iterations: t.iterations}, nil
		}
		return nil, err
	}

	sol := &Solution{
		Status:     Optimal,
		Objective:  -t.a[m][cols],
		X:          make([]float64, n),
		Iterations: t.iterations,
	}
	for i := 0; i < m; i++ {
		if b := t.basis[i]; b < n {
			sol.X[b] = t.a[i][cols]
			if sol.X[b] < 0 && sol.X[b] > -eps {
				sol.X[b] = 0
			}
		}
	}
	return sol, nil
}

var errUnbounded = errors.New("lp: unbounded")

// iterate runs simplex pivots until optimality, considering entering
// columns in [0, colLimit). Dantzig pricing normally; pure Bland's rule
// once the pivot count passes a stall threshold, which guarantees
// termination.
func (t *tableau) iterate(colLimit int) error {
	m := t.rows
	obj := t.a[m]
	maxIter := 200*(m+colLimit) + 2000
	blandAfter := 20*(m+colLimit) + 500
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return ErrIterationLimit
		}
		bland := iter > blandAfter

		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < colLimit; j++ {
			if obj[j] < -eps {
				if bland {
					enter = j
					break
				}
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return nil // optimal
		}

		// Leaving row by minimum ratio; ties to the smallest basis column
		// (lexicographic enough for Bland).
		leave := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			aij := t.a[i][enter]
			if aij <= eps {
				continue
			}
			ratio := t.a[i][t.cols] / aij
			if leave < 0 || ratio < bestRatio-eps ||
				(math.Abs(ratio-bestRatio) <= eps && t.basis[i] < t.basis[leave]) {
				leave = i
				bestRatio = ratio
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
		t.iterations++
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	m := t.rows
	prow := t.a[leave]
	pval := prow[enter]
	inv := 1 / pval
	for j := 0; j <= t.cols; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1 // exact
	for i := 0; i <= m; i++ {
		if i == leave {
			continue
		}
		row := t.a[i]
		f := row[enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
	}
	t.basis[leave] = enter
}

// evictArtificials pivots any artificial variable still basic (at zero
// level after a feasible phase 1) out of the basis, or neutralizes its
// redundant row.
func (t *tableau) evictArtificials() {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				t.iterations++
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain phase 2.
			for j := 0; j <= t.cols; j++ {
				t.a[i][j] = 0
			}
			// Keep the artificial in the basis of the zero row; it stays
			// at level 0 and no column prices against it.
		}
	}
}
