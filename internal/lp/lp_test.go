package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximizationAsMin(t *testing.T) {
	// max 3x + 2y s.t. x+y<=4, x+3y<=6  => x=4, y=0, obj 12.
	p := NewProblem()
	x, y := p.AddVar("x"), p.AddVar("y")
	p.SetObjective(x, -3)
	p.SetObjective(y, -2)
	p.AddConstraint(Le, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint(Le, 6, Term{x, 1}, Term{y, 3})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -12) || !approx(sol.Value(x), 4) || !approx(sol.Value(y), 0) {
		t.Errorf("obj=%v x=%v y=%v", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x <= 4 => x=4, y=6, obj 16.
	p := NewProblem()
	x, y := p.AddVar("x"), p.AddVar("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 2)
	p.AddConstraint(Eq, 10, Term{x, 1}, Term{y, 1})
	p.AddConstraint(Le, 4, Term{x, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 16) || !approx(sol.Value(x), 4) || !approx(sol.Value(y), 6) {
		t.Errorf("obj=%v x=%v y=%v", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestGeConstraints(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 5, x >= 1, y >= 1 => x=4, y=1, obj 11.
	p := NewProblem()
	x, y := p.AddVar("x"), p.AddVar("y")
	p.SetObjective(x, 2)
	p.SetObjective(y, 3)
	p.AddConstraint(Ge, 5, Term{x, 1}, Term{y, 1})
	p.AddConstraint(Ge, 1, Term{x, 1})
	p.AddConstraint(Ge, 1, Term{y, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 11) || !approx(sol.Value(x), 4) || !approx(sol.Value(y), 1) {
		t.Errorf("obj=%v x=%v y=%v", sol.Objective, sol.Value(x), sol.Value(y))
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 (i.e. y >= x + 2), min y => x=0, y=2.
	p := NewProblem()
	x, y := p.AddVar("x"), p.AddVar("y")
	p.SetObjective(y, 1)
	p.AddConstraint(Le, -2, Term{x, 1}, Term{y, -1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 2) || !approx(sol.Value(y), 2) {
		t.Errorf("obj=%v y=%v", sol.Objective, sol.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x")
	p.AddConstraint(Le, 1, Term{x, 1})
	p.AddConstraint(Ge, 2, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x")
	p.SetObjective(x, -1) // maximize x with no upper bound
	p.AddConstraint(Ge, 0, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// The classic Beale cycling example; Bland fallback must terminate.
	p := NewProblem()
	x1, x2, x3, x4 := p.AddVar("x1"), p.AddVar("x2"), p.AddVar("x3"), p.AddVar("x4")
	p.SetObjective(x1, -0.75)
	p.SetObjective(x2, 150)
	p.SetObjective(x3, -0.02)
	p.SetObjective(x4, 6)
	p.AddConstraint(Le, 0, Term{x1, 0.25}, Term{x2, -60}, Term{x3, -0.04}, Term{x4, 9})
	p.AddConstraint(Le, 0, Term{x1, 0.5}, Term{x2, -90}, Term{x3, -0.02}, Term{x4, 3})
	p.AddConstraint(Le, 1, Term{x3, 1})
	sol := solveOK(t, p)
	if !approx(sol.Objective, -0.05) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows force a redundant-row eviction in phase 1.
	p := NewProblem()
	x, y := p.AddVar("x"), p.AddVar("y")
	p.SetObjective(x, 1)
	p.SetObjective(y, 1)
	p.AddConstraint(Eq, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint(Eq, 4, Term{x, 1}, Term{y, 1})
	p.AddConstraint(Eq, 8, Term{x, 2}, Term{y, 2})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 4) {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestZeroProblem(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x")
	sol := solveOK(t, p)
	if !approx(sol.Value(x), 0) || !approx(sol.Objective, 0) {
		t.Errorf("trivial problem: %+v", sol)
	}
}

func TestRepeatedTermsAccumulate(t *testing.T) {
	// x + x <= 4 means 2x <= 4.
	p := NewProblem()
	x := p.AddVar("x")
	p.SetObjective(x, -1)
	p.AddConstraint(Le, 4, Term{x, 1}, Term{x, 1})
	sol := solveOK(t, p)
	if !approx(sol.Value(x), 2) {
		t.Errorf("x = %v, want 2", sol.Value(x))
	}
}

func TestBadVarPanics(t *testing.T) {
	p := NewProblem()
	defer func() {
		if recover() == nil {
			t.Error("constraint on unknown var should panic")
		}
	}()
	p.AddConstraint(Le, 1, Term{0, 1})
}

func TestMinMaxLoadToy(t *testing.T) {
	// A miniature of the paper's problem: route demand 10 from a source
	// to two middleboxes with capacities 8 and 4; minimize the max load
	// factor λ. Optimal: load proportional to capacity, λ = 10/12.
	p := NewProblem()
	t1, t2, lam := p.AddVar("t1"), p.AddVar("t2"), p.AddVar("lambda")
	p.SetObjective(lam, 1)
	p.AddConstraint(Eq, 10, Term{t1, 1}, Term{t2, 1})
	p.AddConstraint(Le, 0, Term{t1, 1}, Term{lam, -8})
	p.AddConstraint(Le, 0, Term{t2, 1}, Term{lam, -4})
	sol := solveOK(t, p)
	if !approx(sol.Objective, 10.0/12) {
		t.Errorf("lambda = %v, want %v", sol.Objective, 10.0/12)
	}
	if !approx(sol.Value(t1), 8*10.0/12) || !approx(sol.Value(t2), 4*10.0/12) {
		t.Errorf("t1=%v t2=%v", sol.Value(t1), sol.Value(t2))
	}
}

func TestTransportation(t *testing.T) {
	// 2 sources (supply 3, 5) x 2 sinks (demand 4, 4) with costs
	// [[1, 4], [2, 1]]. Optimum: s1->d1:3, s2->d1:1, s2->d2:4 cost 9.
	p := NewProblem()
	var x [2][2]int
	costs := [2][2]float64{{1, 4}, {2, 1}}
	supply := [2]float64{3, 5}
	demand := [2]float64{4, 4}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			x[i][j] = p.AddVar("")
			p.SetObjective(x[i][j], costs[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		p.AddConstraint(Eq, supply[i], Term{x[i][0], 1}, Term{x[i][1], 1})
	}
	for j := 0; j < 2; j++ {
		p.AddConstraint(Eq, demand[j], Term{x[0][j], 1}, Term{x[1][j], 1})
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, 9) {
		t.Errorf("objective = %v, want 9", sol.Objective)
	}
}

// bruteForce enumerates all basic solutions of min c·x, Ax = b (after
// adding slacks for Le), x >= 0, for tiny systems, returning the best
// objective; +Inf when infeasible.
func bruteForce(obj []float64, A [][]float64, b []float64) float64 {
	m := len(A)
	n := len(obj)
	best := math.Inf(1)
	idx := make([]int, m)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == m {
			x, ok := solveSquare(A, b, idx)
			if !ok {
				return
			}
			feasible := true
			val := 0.0
			full := make([]float64, n)
			for i, j := range idx {
				if x[i] < -1e-9 {
					feasible = false
					break
				}
				full[j] = x[i]
			}
			if !feasible {
				return
			}
			for j := 0; j < n; j++ {
				val += obj[j] * full[j]
			}
			if val < best {
				best = val
			}
			return
		}
		for j := start; j < n; j++ {
			idx[k] = j
			rec(j+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves A[:,idx] * x = b by Gaussian elimination.
func solveSquare(A [][]float64, b []float64, idx []int) ([]float64, bool) {
	m := len(A)
	M := make([][]float64, m)
	for i := 0; i < m; i++ {
		M[i] = make([]float64, m+1)
		for k, j := range idx {
			M[i][k] = A[i][j]
		}
		M[i][m] = b[i]
	}
	for col := 0; col < m; col++ {
		piv := -1
		for r := col; r < m; r++ {
			if math.Abs(M[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		M[col], M[piv] = M[piv], M[col]
		f := M[col][col]
		for j := col; j <= m; j++ {
			M[col][j] /= f
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			g := M[r][col]
			for j := col; j <= m; j++ {
				M[r][j] -= g * M[col][j]
			}
		}
	}
	x := make([]float64, m)
	for i := 0; i < m; i++ {
		x[i] = M[i][m]
	}
	return x, true
}

func TestRandomLPsAgainstBruteForce(t *testing.T) {
	// Random small LPs with equality constraints (plus slacks folded in
	// manually) cross-checked against exhaustive basic-solution search.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		m := 1 + rng.Intn(2) // constraints
		n := m + 1 + rng.Intn(3)
		obj := make([]float64, n)
		A := make([][]float64, m)
		b := make([]float64, m)
		for j := 0; j < n; j++ {
			obj[j] = float64(rng.Intn(9) + 1)
		}
		for i := 0; i < m; i++ {
			A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				A[i][j] = float64(rng.Intn(4))
			}
			b[i] = float64(rng.Intn(10))
		}
		want := bruteForce(obj, A, b)

		p := NewProblem()
		vars := make([]int, n)
		for j := 0; j < n; j++ {
			vars[j] = p.AddVar("")
			p.SetObjective(vars[j], obj[j])
		}
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if A[i][j] != 0 {
					terms = append(terms, Term{vars[j], A[i][j]})
				}
			}
			p.AddConstraint(Eq, b[i], terms...)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsInf(want, 1) {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: simplex found optimum %v where brute force says infeasible", trial, sol.Objective)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force optimum %v", trial, sol.Status, want)
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: simplex %v != brute force %v", trial, sol.Objective, want)
		}
	}
}

func TestSolutionIsFeasible(t *testing.T) {
	// Property on random feasible problems: the returned X satisfies all
	// constraints within tolerance.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		p := NewProblem()
		n := 2 + rng.Intn(5)
		vars := make([]int, n)
		for j := range vars {
			vars[j] = p.AddVar("")
			p.SetObjective(vars[j], rng.Float64()*10-2)
		}
		type con struct {
			coefs []float64
			rhs   float64
		}
		var cons []con
		m := 1 + rng.Intn(4)
		for i := 0; i < m; i++ {
			c := con{coefs: make([]float64, n), rhs: float64(rng.Intn(20) + 1)}
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				c.coefs[j] = float64(rng.Intn(5))
				terms[j] = Term{vars[j], c.coefs[j]}
			}
			cons = append(cons, c)
			p.AddConstraint(Le, c.rhs, terms...)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status == Unbounded {
			continue // negative costs can make Le-only problems unbounded
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for a feasible problem (origin feasible)", trial, sol.Status)
		}
		for ci, c := range cons {
			lhs := 0.0
			for j := range c.coefs {
				lhs += c.coefs[j] * sol.X[j]
			}
			if lhs > c.rhs+1e-6 {
				t.Fatalf("trial %d constraint %d violated: %v > %v", trial, ci, lhs, c.rhs)
			}
		}
		for j, x := range sol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: negative variable %d = %v", trial, j, x)
			}
		}
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if Le.String() != "<=" || Eq.String() != "=" || Ge.String() != ">=" {
		t.Error("op strings wrong")
	}
	if Op(9).String() == "" {
		t.Error("unknown op should render")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should render")
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A min-max-load instance shaped like the controller's: 40 sources
	// spread over 8 middleboxes with random candidate sets.
	rng := rand.New(rand.NewSource(9))
	build := func() *Problem {
		p := NewProblem()
		lam := p.AddVar("lambda")
		p.SetObjective(lam, 1)
		const nm = 8
		loads := make([][]Term, nm)
		for s := 0; s < 40; s++ {
			demand := float64(rng.Intn(50) + 10)
			k := 3
			terms := make([]Term, 0, k)
			for c := 0; c < k; c++ {
				mb := rng.Intn(nm)
				v := p.AddVar("")
				terms = append(terms, Term{v, 1})
				loads[mb] = append(loads[mb], Term{v, 1})
			}
			p.AddConstraint(Eq, demand, terms...)
		}
		for mb := 0; mb < nm; mb++ {
			terms := append([]Term{{lam, -300}}, loads[mb]...)
			p.AddConstraint(Le, 0, terms...)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := build().Solve()
		if err != nil || sol.Status != Optimal {
			b.Fatalf("%v %v", err, sol)
		}
	}
}
