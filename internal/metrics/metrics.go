// Package metrics is a dependency-free observability registry: atomic
// counters, gauges and fixed-bucket histograms addressed by name plus
// label pairs, with a pluggable microsecond clock so the discrete-event
// simulator stamps snapshots with virtual time while the live runtime
// uses wall time. The registry is the single source the figure tables,
// the conformance tests and the /metrics endpoint all read from; the
// exposition (expose.go) is deterministic — families and series are
// sorted — so two runs with identical inputs produce byte-identical
// snapshots, which the determinism regression test asserts.
//
// The package deliberately imports no time source of its own: callers
// inject a Clock (sim: Engine.Now; live: Runtime.NowUS), which keeps the
// package inside the simdeterminism analyzer's guard.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Clock returns the current time in microseconds. The simulator injects
// its virtual clock; the live runtime injects microseconds since start.
type Clock func() int64

// Metric kinds, as rendered in the exposition's # TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (λ, queue depths, epochs).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts integer observations into fixed cumulative buckets
// (microsecond latencies, hop counts). Integer sums keep snapshots exact
// and reproducible; bucket bounds are fixed at creation.
type Histogram struct {
	bounds []int64        // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the cumulative
// buckets: it returns the upper bound of the first bucket whose cumulative
// count reaches q·Count. With no observations it returns 0; observations
// beyond the last finite bound report that bound (an underestimate, as in
// any fixed-bucket histogram). Concurrent Observe calls make the estimate
// approximate, never a panic.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	need := int64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= need {
			return h.bounds[i]
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// LatencyBucketsUS is the default bucket set for microsecond latencies,
// spanning a loopback RTT to a badly overloaded middlebox queue.
var LatencyBucketsUS = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000}

// HopBuckets is the default bucket set for path hop counts.
var HopBuckets = []int64{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24}

// family is one metric name: its kind, help text and label-addressed
// series.
type family struct {
	name   string
	kind   string
	help   string
	bounds []int64 // histograms only
	series map[string]interface{}
}

// Registry holds every metric family. All methods are safe for
// concurrent use; get-or-create returns the same instance for the same
// (name, labels), so hot paths can also cache the returned pointer.
type Registry struct {
	clock Clock

	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates a registry stamping snapshots with the given clock
// (nil: snapshots are stamped 0).
func NewRegistry(clock Clock) *Registry {
	return &Registry{clock: clock, families: make(map[string]*family)}
}

// NowUS returns the registry clock's current reading.
func (r *Registry) NowUS() int64 {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// labelKey renders label pairs as a canonical, sorted series key. Labels
// are alternating key, value strings; an odd count is a programming
// error.
func labelKey(labels []string) string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", labels))
	}
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// getFamily returns the named family, creating it with the given kind.
// Re-registering a name under a different kind is a programming error.
func (r *Registry) getFamily(name, kind string, bounds []int64) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, bounds: bounds, series: make(map[string]interface{})}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, kindCounter, nil)
	if m, ok := f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	return c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, kindGauge, nil)
	if m, ok := f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	return g
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket bounds on first use. Later calls reuse the family's
// original bounds regardless of the argument, so every series of a
// family shares one bucket layout.
func (r *Registry) Histogram(name string, bounds []int64, labels ...string) *Histogram {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(bounds) == 0 {
		bounds = LatencyBucketsUS
	}
	f := r.getFamily(name, kindHistogram, append([]int64(nil), bounds...))
	if m, ok := f.series[key]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
	f.series[key] = h
	return h
}

// SetHelp records a family's # HELP line. Unknown names are a no-op:
// declare help after the family's first use.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
	}
}
