package metrics

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterIdentityAndLabels(t *testing.T) {
	r := NewRegistry(nil)
	a := r.Counter("pkts_total", "node", "3", "func", "FW")
	b := r.Counter("pkts_total", "func", "FW", "node", "3") // order-independent
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("pkts_total", "node", "4", "func", "FW")
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	a.Add(5)
	a.Inc()
	a.Add(-3) // ignored: counters are monotonic
	if got := b.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry(nil)
	g := r.Gauge("lambda")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("lat_us", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5126 {
		t.Fatalf("count=%d sum=%d, want 5 and 5126", h.Count(), h.Sum())
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_us_bucket{le="10"} 2`,
		`lat_us_bucket{le="100"} 4`,
		`lat_us_bucket{le="1000"} 4`,
		`lat_us_bucket{le="+Inf"} 5`,
		`lat_us_sum 5126`,
		`lat_us_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionDeterministicAndSorted(t *testing.T) {
	build := func() *Registry {
		var at int64 = 42
		r := NewRegistry(func() int64 { return at })
		// Create in scrambled order; exposition must sort.
		r.Counter("z_total", "b", "2").Add(7)
		r.Counter("a_total").Inc()
		r.Gauge("m_gauge", "x", "1").Set(0.25)
		r.Counter("z_total", "b", "1").Add(3)
		r.Histogram("h_us", []int64{1, 2}, "n", "9").Observe(2)
		return r
	}
	s1 := build().Snapshot()
	s2 := build().Snapshot()
	if !bytes.Equal(s1.Text, s2.Text) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", s1.Text, s2.Text)
	}
	if s1.AtUS != 42 || !bytes.Contains(s1.Text, []byte("# snapshot at_us 42")) {
		t.Fatalf("snapshot not stamped with clock: %d\n%s", s1.AtUS, s1.Text)
	}
	out := string(s1.Text)
	if strings.Index(out, "a_total") > strings.Index(out, "z_total") {
		t.Fatal("families not sorted")
	}
	if strings.Index(out, `{b="1"}`) > strings.Index(out, `{b="2"}`) {
		t.Fatal("series not sorted")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("esc_total", "k", "a\"b\\c\nd").Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "w", "shared").Inc()
				r.Histogram("h_us", []int64{10, 100}, "w", "shared").Observe(int64(j % 200))
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "w", "shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_us", nil, "w", "shared").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
}

func TestServeMuxMetricsAndPprof(t *testing.T) {
	r := NewRegistry(func() int64 { return 7 })
	r.Counter("up_total").Inc()
	r.SetHelp("up_total", "demo counter")
	srv := httptest.NewServer(ServeMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"# HELP up_total demo counter", "# TYPE up_total counter", "up_total 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.80s", code, body)
	}
}
