package metrics

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// Snapshot is one frozen exposition: the registry's full Prometheus text
// at a moment of (virtual or wall) time. The simulator takes these
// periodically; the determinism regression test compares them
// byte-for-byte across runs.
type Snapshot struct {
	AtUS int64
	Text []byte
}

// Snapshot freezes the registry now.
func (r *Registry) Snapshot() Snapshot {
	var b bytes.Buffer
	at := r.NowUS()
	fmt.Fprintf(&b, "# snapshot at_us %d\n", at)
	_ = r.WritePrometheus(&b)
	return Snapshot{AtUS: at, Text: b.Bytes()}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, families and series in sorted order so output is
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot family/series structure under the lock; values are atomics
	// and read lock-free afterwards.
	type seriesRef struct {
		key string
		m   interface{}
	}
	type famRef struct {
		f      *family
		series []seriesRef
	}
	fams := make([]famRef, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fr := famRef{f: f}
		for _, k := range keys {
			fr.series = append(fr.series, seriesRef{key: k, m: f.series[k]})
		}
		fams = append(fams, fr)
	}
	r.mu.Unlock()

	var b bytes.Buffer
	for _, fr := range fams {
		f := fr.f
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range fr.series {
			switch m := s.m.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.key, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.key, strconv.FormatFloat(m.Value(), 'g', -1, 64))
			case *Histogram:
				writeHistogram(&b, f.name, s.key, m)
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets, sum
// and count.
func writeHistogram(b *bytes.Buffer, name, key string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(key, strconv.FormatInt(bound, 10)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(key, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, key, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, key, h.Count())
}

// mergeLE splices the le label into an existing (possibly empty)
// rendered label set.
func mergeLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ServeMux returns a mux serving /metrics plus the standard
// net/http/pprof endpoints under /debug/pprof/ — the live runtime's
// observability surface.
func ServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
