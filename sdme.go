// Package sdme is a from-scratch reproduction of "Dependable Policy
// Enforcement in Traditional Non-SDN Networks" (Odegbile, Chen, Wang —
// ICDCS 2019): automated middlebox policy enforcement on networks whose
// routers run plain OSPF and know nothing about policies.
//
// The building blocks live under internal/ (topology, OSPF, packets,
// policies, flow tables, network functions, the LP solver, the
// enforcement dataplane, the controller, the discrete-event simulator and
// a live UDP runtime); this package is the public facade that assembles
// them:
//
//	sys, _ := sdme.NewCampus(1)
//	sys.MustAddPolicy("*", "10.2.0.0/16", "*", "80", "FW,IDS")
//	_ = sys.Deploy(sdme.LoadBalanced)
//	demands := []sdme.FlowDemand{{Tuple: ..., Packets: 1000}}
//	lambda, _ := sys.Balance(demands)
//	report, _ := sys.Evaluate(demands)
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and experiment index.
package sdme

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/netaddr"
	"sdme/internal/ospf"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/sim"
	"sdme/internal/topo"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while making the API usable from outside.
type (
	// Strategy selects hot-potato, random or load-balanced enforcement.
	Strategy = enforce.Strategy
	// FuncType identifies a network function (FW, IDS, WP, TM, ...).
	FuncType = policy.FuncType
	// FlowDemand is a flow plus its packet count, the evaluator input.
	FlowDemand = enforce.FlowDemand
	// LoadReport aggregates per-middlebox loads for a flow population.
	LoadReport = enforce.LoadReport
	// FiveTuple identifies a transport flow.
	FiveTuple = netaddr.FiveTuple
	// Node is a configured proxy or middlebox dataplane instance.
	Node = enforce.Node
	// NodeID identifies a topology node.
	NodeID = topo.NodeID
)

// Enforcement strategies.
const (
	HotPotato    = enforce.HotPotato
	Random       = enforce.Random
	LoadBalanced = enforce.LoadBalanced
)

// Built-in network functions.
const (
	FW  = policy.FuncFW
	IDS = policy.FuncIDS
	WP  = policy.FuncWP
	TM  = policy.FuncTM
)

// Config assembles a System.
type Config struct {
	// Topology is "campus" (§IV-A real-world campus) or "waxman" (400
	// edge routers / 25 cores).
	Topology string
	// Seed drives topology generation and middlebox placement.
	Seed int64
	// MiddleboxCounts is the population per function; defaults to the
	// paper's 7 FW / 7 IDS / 4 WP / 4 TM.
	MiddleboxCounts map[FuncType]int
	// K is the candidate-set size |M_x^e| per function; defaults to the
	// paper's 4/4/2/2.
	K map[FuncType]int
	// LabelSwitching enables the §III-E enhancement on all nodes.
	LabelSwitching bool
	// FlowTTL / LabelTTL bound soft state (microseconds of virtual or
	// wall time; 0 = never expire).
	FlowTTL, LabelTTL int64
	// UseTrie selects the trie classifier on nodes.
	UseTrie bool
	// HashSeed decorrelates flow-hash selection across runs.
	HashSeed uint64
}

// System is an assembled enforcement deployment: topology, routing,
// policies, controller and nodes.
type System struct {
	Graph    *topo.Graph
	Dep      *enforce.Deployment
	Policies *policy.Table
	AllPairs *route.AllPairs
	Domain   *ospf.Domain
	Nodes    map[NodeID]*Node

	cfg      Config
	ctl      *controller.Controller
	strategy Strategy
	deployed bool
}

// NewCampus builds a System on the paper's campus topology.
func NewCampus(seed int64) (*System, error) {
	return NewSystem(Config{Topology: "campus", Seed: seed})
}

// NewWaxman builds a System on the paper's random Waxman topology.
func NewWaxman(seed int64) (*System, error) {
	return NewSystem(Config{Topology: "waxman", Seed: seed})
}

// NewSystem builds the topology, places the middlebox population and
// prepares an empty policy table. Call AddPolicy then Deploy.
func NewSystem(cfg Config) (*System, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var g *topo.Graph
	switch cfg.Topology {
	case "", "campus":
		g = topo.Campus(topo.CampusConfig{WithProxies: true}, rng)
	case "waxman":
		g = topo.Waxman(topo.WaxmanConfig{WithProxies: true}, rng)
	default:
		return nil, fmt.Errorf("sdme: unknown topology %q", cfg.Topology)
	}
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		return nil, err
	}
	counts := cfg.MiddleboxCounts
	if counts == nil {
		counts = controller.DefaultCounts()
	}
	dep.PlaceRandom(counts, rng)
	if cfg.K == nil {
		cfg.K = controller.DefaultK()
	}
	return &System{
		Graph:    g,
		Dep:      dep,
		Policies: policy.NewTable(),
		cfg:      cfg,
	}, nil
}

// AddPolicy appends a policy in string form: source and destination
// prefixes ("*" or CIDR), source and destination ports ("*", "80" or
// "1000-2000"), and a comma-separated action list ("FW,IDS" or
// "permit"). Policies match first-added-first.
func (s *System) AddPolicy(src, dst, srcPort, dstPort, actions string) error {
	if s.deployed {
		return fmt.Errorf("sdme: AddPolicy after Deploy; policies are distributed at deploy time")
	}
	d := policy.NewDescriptor()
	var err error
	if d.Src, err = parsePrefix(src); err != nil {
		return err
	}
	if d.Dst, err = parsePrefix(dst); err != nil {
		return err
	}
	if d.SrcPort, err = parsePorts(srcPort); err != nil {
		return err
	}
	if d.DstPort, err = parsePorts(dstPort); err != nil {
		return err
	}
	acts, err := policy.ParseActions(actions)
	if err != nil {
		return err
	}
	s.Policies.Add(d, acts)
	return nil
}

// LoadPolicies reads policies in the Table I-style text format (see
// internal/policy: "<src> <dst> <srcPort> <dstPort> <actions>", '#'
// comments, optional "proto=" field) and appends them in file order.
func (s *System) LoadPolicies(r io.Reader) error {
	if s.deployed {
		return fmt.Errorf("sdme: LoadPolicies after Deploy")
	}
	return policy.ParseRules(r, s.Policies)
}

// MustAddPolicy is AddPolicy that panics on error; for examples and tests.
func (s *System) MustAddPolicy(src, dst, srcPort, dstPort, actions string) {
	if err := s.AddPolicy(src, dst, srcPort, dstPort, actions); err != nil {
		panic(err)
	}
}

func parsePrefix(s string) (netaddr.Prefix, error) {
	if s == "*" || s == "" {
		return netaddr.AnyPrefix(), nil
	}
	return netaddr.ParsePrefix(s)
}

func parsePorts(s string) (netaddr.PortRange, error) {
	if s == "*" || s == "" {
		return netaddr.AnyPort(), nil
	}
	if lo, hi, ok := strings.Cut(s, "-"); ok {
		l, err1 := strconv.ParseUint(lo, 10, 16)
		h, err2 := strconv.ParseUint(hi, 10, 16)
		if err1 != nil || err2 != nil || l > h {
			return netaddr.PortRange{}, fmt.Errorf("sdme: bad port range %q", s)
		}
		return netaddr.PortRange{Lo: uint16(l), Hi: uint16(h)}, nil
	}
	p, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return netaddr.PortRange{}, fmt.Errorf("sdme: bad port %q", s)
	}
	return netaddr.SinglePort(uint16(p)), nil
}

// LintPolicies analyzes the policy list for dead (shadowed/redundant)
// and order-dependent (conflicting) policies, returning human-readable
// findings. Run it before Deploy; an empty result means the list is
// clean.
func (s *System) LintPolicies() []string {
	findings := s.Policies.Lint()
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.String()
	}
	return out
}

// Deploy converges OSPF routing, computes the controller assignments
// (m_x^e, M_x^e, P_x) and materializes every proxy and middlebox with the
// given strategy. Call after all policies are added.
func (s *System) Deploy(strategy Strategy) error {
	if s.deployed {
		return fmt.Errorf("sdme: already deployed")
	}
	s.Domain = ospf.NewDomain(s.Graph)
	s.Domain.Converge()
	s.AllPairs = route.NewAllPairs(s.Graph, route.RouterTransitOnly(s.Graph))
	s.ctl = controller.New(s.Dep, s.AllPairs, s.Policies, controller.Options{
		Strategy:       strategy,
		K:              s.cfg.K,
		LabelSwitching: s.cfg.LabelSwitching,
		FlowTTL:        s.cfg.FlowTTL,
		LabelTTL:       s.cfg.LabelTTL,
		UseTrie:        s.cfg.UseTrie,
		HashSeed:       s.cfg.HashSeed,
	})
	nodes, err := s.ctl.BuildNodes()
	if err != nil {
		return err
	}
	s.Nodes = nodes
	s.strategy = strategy
	s.deployed = true
	return nil
}

// Balance runs the controller's load-balancing optimization (Eq. 2 of the
// paper) against the traffic described by demands and installs the
// resulting weights. It returns the optimal λ (the minimized maximum
// load, in packets, under uniform capacities). Only meaningful after
// Deploy(LoadBalanced).
func (s *System) Balance(demands []FlowDemand) (float64, error) {
	if !s.deployed {
		return 0, fmt.Errorf("sdme: Balance before Deploy")
	}
	meas := controller.MeasurementsFromFlows(s.Dep, s.Policies, demands)
	sol, err := s.ctl.SolveLB(meas)
	if err != nil {
		return 0, err
	}
	controller.ApplyWeights(s.Nodes, sol)
	return sol.Lambda, nil
}

// Evaluate routes the demand set through the enforcement logic and
// returns per-middlebox loads (flow-level, exact for per-flow hashing).
func (s *System) Evaluate(demands []FlowDemand) (*LoadReport, error) {
	if !s.deployed {
		return nil, fmt.Errorf("sdme: Evaluate before Deploy")
	}
	return enforce.EvaluateFlows(s.Nodes, s.Dep, s.AllPairs, demands)
}

// Simulator returns a packet-level discrete-event simulation over the
// deployed system. Inject flows, then Run.
func (s *System) Simulator() (*sim.Network, error) {
	if !s.deployed {
		return nil, fmt.Errorf("sdme: Simulator before Deploy")
	}
	return sim.New(s.Graph, s.Domain, s.Dep, s.Nodes), nil
}

// Trace computes the exact middlebox path one flow's packets will take
// under the current configuration, without sending a packet.
func (s *System) Trace(ft FiveTuple) (*enforce.Trace, error) {
	if !s.deployed {
		return nil, fmt.Errorf("sdme: Trace before Deploy")
	}
	return enforce.TraceFlow(s.Nodes, s.Dep, s.AllPairs, ft)
}

// FailMiddlebox marks a middlebox (by node ID) as down and repairs the
// deployment: every node's candidate sets are recomputed over the
// survivors, in place. Pass down=false to bring it back. LB weights are
// dropped by the repair; call Balance again to restore optimized splits.
func (s *System) FailMiddlebox(id NodeID, down bool) error {
	if !s.deployed {
		return fmt.Errorf("sdme: FailMiddlebox before Deploy")
	}
	if err := s.ctl.MarkFailed(id, down); err != nil {
		return err
	}
	return s.ctl.Reassign(s.Nodes)
}

// Verify audits the deployed configuration: for every (policy, source
// subnet) pair it traces a representative flow through the nodes' own
// selection logic and checks the realized chain performs the policy's
// actions in order. An empty result is the "dependable" guarantee,
// mechanically checked.
func (s *System) Verify() []string {
	if !s.deployed {
		return []string{"sdme: Verify before Deploy"}
	}
	vs := s.ctl.Audit(s.Nodes)
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// Providers returns the middleboxes implementing a function (M^e).
func (s *System) Providers(f FuncType) []NodeID { return s.Dep.Providers(f) }

// NameOf returns a node's human-readable name.
func (s *System) NameOf(id NodeID) string { return s.Graph.Node(id).Name }

// Subnets returns the number of stub subnets (each behind a policy proxy).
func (s *System) Subnets() int { return s.Dep.NumSubnets() }

// HostAddr returns the model address of host h in subnet i (both
// 1-based), for building flow tuples.
func HostAddr(subnet, host int) netaddr.Addr { return topo.HostAddr(subnet, host) }

// Flow builds a TCP flow tuple between two hosts.
func Flow(src, dst netaddr.Addr, srcPort, dstPort uint16) FiveTuple {
	return FiveTuple{Src: src, Dst: dst, SrcPort: srcPort, DstPort: dstPort, Proto: netaddr.ProtoTCP}
}
