package sdme_test

import (
	"strings"
	"testing"

	"sdme"
)

func deploySystem(t *testing.T, strategy sdme.Strategy) *sdme.System {
	t.Helper()
	sys, err := sdme.NewCampus(1)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustAddPolicy("*", "*", "*", "80", "FW,IDS")
	sys.MustAddPolicy("10.1.0.0/16", "*", "*", "443", "FW,IDS,WP")
	if err := sys.Deploy(strategy); err != nil {
		t.Fatal(err)
	}
	return sys
}

func someDemands(n int) []sdme.FlowDemand {
	out := make([]sdme.FlowDemand, 0, n)
	for i := 0; i < n; i++ {
		src := 1 + i%10
		dst := 1 + (i+3)%10
		if dst == src {
			dst = 1 + (dst)%10
		}
		out = append(out, sdme.FlowDemand{
			Tuple:   sdme.Flow(sdme.HostAddr(src, 1+i%50), sdme.HostAddr(dst, 1+i%50), uint16(20000+i), 80),
			Packets: int64(1 + i%9),
		})
	}
	return out
}

func TestFacadeLifecycle(t *testing.T) {
	sys := deploySystem(t, sdme.LoadBalanced)
	demands := someDemands(500)

	lambda, err := sys.Balance(demands)
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 {
		t.Errorf("lambda = %v", lambda)
	}
	report, err := sys.Evaluate(demands)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalPackets == 0 {
		t.Error("no packets evaluated")
	}
	if got := report.MaxLoad(sys.Dep, sdme.IDS); got == 0 {
		t.Error("IDS untouched")
	}
	if len(sys.Providers(sdme.FW)) != 7 {
		t.Errorf("FW providers = %d, want 7 (paper population)", len(sys.Providers(sdme.FW)))
	}
	if sys.Subnets() != 10 {
		t.Errorf("subnets = %d, want 10", sys.Subnets())
	}
	if name := sys.NameOf(sys.Providers(sdme.FW)[0]); !strings.HasPrefix(name, "FW") {
		t.Errorf("provider name = %q", name)
	}
}

func TestFacadeSimulator(t *testing.T) {
	sys := deploySystem(t, sdme.HotPotato)
	nw, err := sys.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	ft := sdme.Flow(sdme.HostAddr(1, 1), sdme.HostAddr(2, 1), 30000, 80)
	if err := nw.InjectFlow(ft, 5, 256, 0, 100); err != nil {
		t.Fatal(err)
	}
	nw.Run(0)
	if got := nw.Stats().Delivered; got != 5 {
		t.Errorf("delivered = %d", got)
	}
}

func TestFacadeOrderingErrors(t *testing.T) {
	sys, err := sdme.NewCampus(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Balance(nil); err == nil {
		t.Error("Balance before Deploy should fail")
	}
	if _, err := sys.Evaluate(nil); err == nil {
		t.Error("Evaluate before Deploy should fail")
	}
	if _, err := sys.Simulator(); err == nil {
		t.Error("Simulator before Deploy should fail")
	}
	if err := sys.Deploy(sdme.HotPotato); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sdme.HotPotato); err == nil {
		t.Error("double Deploy should fail")
	}
	if err := sys.AddPolicy("*", "*", "*", "*", "FW"); err == nil {
		t.Error("AddPolicy after Deploy should fail")
	}
}

func TestFacadePolicyParsing(t *testing.T) {
	sys, err := sdme.NewCampus(3)
	if err != nil {
		t.Fatal(err)
	}
	good := [][5]string{
		{"*", "*", "*", "*", "permit"},
		{"10.1.0.0/16", "10.2.0.0/16", "1000-2000", "80", "FW"},
		{"", "", "", "", ""},
	}
	for _, g := range good {
		if err := sys.AddPolicy(g[0], g[1], g[2], g[3], g[4]); err != nil {
			t.Errorf("AddPolicy(%v): %v", g, err)
		}
	}
	bad := [][5]string{
		{"nonsense", "*", "*", "*", "FW"},
		{"*", "10.0.0.0/99", "*", "*", "FW"},
		{"*", "*", "banana", "*", "FW"},
		{"*", "*", "*", "9-1", "FW"},
		{"*", "*", "*", "*", "NOPE"},
	}
	for _, g := range bad {
		if err := sys.AddPolicy(g[0], g[1], g[2], g[3], g[4]); err == nil {
			t.Errorf("AddPolicy(%v) should fail", g)
		}
	}
}

func TestFacadeWaxman(t *testing.T) {
	sys, err := sdme.NewWaxman(4)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustAddPolicy("*", "*", "*", "80", "FW,IDS")
	if err := sys.Deploy(sdme.Random); err != nil {
		t.Fatal(err)
	}
	if sys.Subnets() != 400 {
		t.Errorf("waxman subnets = %d", sys.Subnets())
	}
	report, err := sys.Evaluate(someDemands(200))
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalPackets == 0 {
		t.Error("nothing evaluated")
	}
}

func TestFacadeUnknownTopology(t *testing.T) {
	if _, err := sdme.NewSystem(sdme.Config{Topology: "ring"}); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestFacadeMustAddPolicyPanics(t *testing.T) {
	sys, err := sdme.NewCampus(5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddPolicy on bad input should panic")
		}
	}()
	sys.MustAddPolicy("bad", "*", "*", "*", "FW")
}

func TestFacadeTrace(t *testing.T) {
	sys := deploySystem(t, sdme.HotPotato)
	ft := sdme.Flow(sdme.HostAddr(3, 1), sdme.HostAddr(2, 1), 30000, 80)
	tr, err := sys.Trace(ft)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Policy == nil || len(tr.Hops) != 2 {
		t.Fatalf("trace = %v", tr)
	}
	if tr.Hops[0].Func != sdme.FW || tr.Hops[1].Func != sdme.IDS {
		t.Errorf("hop functions: %v", tr.Hops)
	}
	// Tracing and evaluating agree on the chosen firewall.
	report, err := sys.Evaluate([]sdme.FlowDemand{{Tuple: ft, Packets: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Loads[tr.Hops[0].Node] != 5 {
		t.Errorf("traced FW %v did not receive the flow: %v", tr.Hops[0].Node, report.SortedLoads())
	}
}

func TestFacadeFailureRepair(t *testing.T) {
	sys := deploySystem(t, sdme.HotPotato)
	ft := sdme.Flow(sdme.HostAddr(3, 1), sdme.HostAddr(2, 1), 30000, 80)
	tr, err := sys.Trace(ft)
	if err != nil {
		t.Fatal(err)
	}
	victim := tr.Hops[0].Node
	if err := sys.FailMiddlebox(victim, true); err != nil {
		t.Fatal(err)
	}
	tr2, err := sys.Trace(ft)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Hops[0].Node == victim {
		t.Error("flow still routed through the failed middlebox")
	}
	if err := sys.FailMiddlebox(victim, false); err != nil {
		t.Fatal(err)
	}
	tr3, err := sys.Trace(ft)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Hops[0].Node != victim {
		t.Error("recovery did not restore the original assignment")
	}
	// Failing a non-middlebox errors.
	if err := sys.FailMiddlebox(sdme.NodeID(0), true); err == nil {
		t.Error("failing a router should error")
	}
}

func TestFacadeLint(t *testing.T) {
	sys, err := sdme.NewCampus(6)
	if err != nil {
		t.Fatal(err)
	}
	sys.MustAddPolicy("*", "*", "*", "*", "FW")
	sys.MustAddPolicy("10.1.0.0/16", "*", "*", "80", "IDS") // dead: shadowed by the wildcard
	findings := sys.LintPolicies()
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestFacadeLoadPolicies(t *testing.T) {
	sys, err := sdme.NewCampus(7)
	if err != nil {
		t.Fatal(err)
	}
	rules := `
# protect subnet 2's web service
*            10.2.0.0/16 * 80 FW,IDS
10.1.0.0/16  *           * 443 FW,IDS,WP
`
	if err := sys.LoadPolicies(strings.NewReader(rules)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy(sdme.HotPotato); err != nil {
		t.Fatal(err)
	}
	tr, err := sys.Trace(sdme.Flow(sdme.HostAddr(3, 1), sdme.HostAddr(2, 1), 40000, 80))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Policy == nil || len(tr.Hops) != 2 {
		t.Errorf("loaded policy not enforced: %v", tr)
	}
	if err := sys.LoadPolicies(strings.NewReader("broken")); err == nil {
		t.Error("LoadPolicies after Deploy should fail")
	}
}

func TestFacadeVerify(t *testing.T) {
	sys := deploySystem(t, sdme.LoadBalanced)
	if vs := sys.Verify(); len(vs) != 0 {
		t.Errorf("fresh deployment has violations: %v", vs)
	}
	// Failing a middlebox and repairing keeps the deployment verified.
	victim := sys.Providers(sdme.FW)[0]
	if err := sys.FailMiddlebox(victim, true); err != nil {
		t.Fatal(err)
	}
	if vs := sys.Verify(); len(vs) != 0 {
		t.Errorf("violations after repair: %v", vs)
	}
}
