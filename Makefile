# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# gates in the same order.

GO ?= go

.PHONY: all build test race vet fmt verify-examples chaos fuzz cover check \
	bench bench-smoke bench-churn bench-churn-smoke race-stress

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet = the toolchain's vet plus this repository's own analyzers
# (internal/lint via cmd/sdme-vet).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sdme-vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Fault-injection suite under the race detector, twice: reconnect
# storms, ack loss, wedged devices, epoch-fenced rollout and the full
# recovery-convergence schedule on both substrates. -count=2 defeats test
# caching and shakes out order-dependent flakes. The second block re-runs
# the survivability experiments (local fast failover, controller
# kill/restart, replicated-HA takeover) across a seed matrix so the
# acceptance claims hold beyond one lucky seed. The third block is the
# leader-kill matrix: every chaos seed crosses every -kill-leader-at
# phase, so the assassination lands at different points of the lease
# cycle (mid-heartbeat, mid-replication, right after a rollout).
CHAOS_SEEDS ?= 7 23 41
KILL_LEADER_AT ?= 150000 400000
chaos:
	$(GO) test -race -count=2 ./internal/faultinject/
	$(GO) test -race -count=2 -run 'Chaos|Recovery|Reconnect|Wedge|TwoPhase' \
		./internal/mgmt/ ./internal/live/ ./internal/experiments/
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos seed $$seed =="; \
		SDME_CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'Failover|Restart|HA' \
			./internal/experiments/ || exit 1; \
	done
	@for seed in $(CHAOS_SEEDS); do \
		for at in $(KILL_LEADER_AT); do \
			echo "== leader kill: seed $$seed, t=$$at us =="; \
			$(GO) run ./cmd/sdme-sim -controllers 3 -seed $$seed -kill-leader-at $$at || exit 1; \
		done; \
	done

# Fuzz smoke: every native fuzz target gets a short budget. The go tool
# accepts exactly one -fuzz target per invocation, hence one line each.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/packet/ -run '^FuzzUnmarshal$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/packet/ -run '^FuzzFragmentReassemble$$' -fuzz '^FuzzFragmentReassemble$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mgmt/ -run '^FuzzWire$$' -fuzz '^FuzzWire$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mgmt/ -run '^FuzzConfigDTO$$' -fuzz '^FuzzConfigDTO$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mgmt/ -run '^FuzzConfigDelta$$' -fuzz '^FuzzConfigDelta$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/controller/ -run '^FuzzJournalStream$$' -fuzz '^FuzzJournalStream$$' -fuzztime $(FUZZTIME)

# Coverage profile across all packages, with the per-function summary's
# total line printed at the end.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Statically verify the controller plan (candidate sets, loop freedom,
# hot-potato optimality, LB weights) on both example topologies.
verify-examples:
	$(GO) run ./cmd/sdme-topo -topology campus -verify
	$(GO) run ./cmd/sdme-topo -topology waxman -verify

# Dataplane throughput/latency grid (workers × shards, both substrates) →
# results/bench_dataplane.json. Exits nonzero if the simulated substrate
# fails the ≥2× 16-vs-1-worker scaling gate (the sim numbers come from a
# deterministic virtual-time pipeline model, so the gate is reproducible
# on any host, including single-core CI). bench-smoke is the reduced CI
# variant.
bench:
	$(GO) run ./cmd/sdme-bench -suite dataplane -out results

bench-smoke:
	$(GO) run ./cmd/sdme-bench -suite dataplane -smoke -out results

# Incremental-pipeline churn grid (full vs delta rollout across churn
# rates) → results/bench_churn.json. Exits nonzero if the incremental
# rollout costs more than half the full-rollout bytes at the lowest rate
# (pushed bytes are encoded envelope sizes, deterministic per seed).
bench-churn:
	$(GO) run ./cmd/sdme-bench -suite churn -out results

bench-churn-smoke:
	$(GO) run ./cmd/sdme-bench -suite churn -smoke -out results

# Concurrency stress under the race detector: 8 writer goroutines + a
# sweeper on the sharded tables (duplicate tunnel-ID and resurrection
# invariants), plus the live worker-pool ordering/shutdown suite.
# -count=5 shakes out schedule-dependent interleavings.
race-stress:
	$(GO) test -race -count=5 -run 'Stress|WorkerPool|FlowWorkerHash' \
		./internal/flowtable/ ./internal/live/

check: build fmt vet verify-examples race
