module sdme

go 1.22
