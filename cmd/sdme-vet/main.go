// Command sdme-vet runs the repository's custom static analyzers
// (internal/lint) over module packages, in the style of a go/analysis
// multichecker but with no dependency outside the standard library.
//
// Usage:
//
//	sdme-vet [-list] [-run name1,name2] [-typeerrors] [patterns ...]
//
// Patterns default to ./... and accept the usual forms (./internal/live,
// ./..., sdme/internal/...). The exit status is 1 when any diagnostic is
// reported, so CI can gate on it. Findings are suppressed per line with
// a `//vet:ignore <analyzer>` comment on the offending line or the line
// above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdme/internal/lint"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdme-vet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	list := flag.Bool("list", false, "list the available analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	showTypeErrs := flag.Bool("typeerrors", false, "also print type-checker errors encountered while loading")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return 0, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		return 0, err
	}
	if *showTypeErrs {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "sdme-vet: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sdme-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1, nil
	}
	return 0, nil
}
