// Command sdme-vet runs the repository's custom static analyzers
// (internal/lint) over module packages, in the style of a go/analysis
// multichecker but with no dependency outside the standard library.
//
// Usage:
//
//	sdme-vet [-list] [-run name1,name2] [-json] [-typeerrors]
//	         [-lockdepth n] [-taintdepth n] [-leakdepth n] [patterns ...]
//
// Patterns default to ./... and accept the usual forms (./internal/live,
// ./..., sdme/internal/...). The exit status is 1 when any diagnostic is
// reported, so CI can gate on it. Findings are suppressed per line with
// a `//vet:ignore <analyzer>` comment on the offending line or the line
// above it.
//
// -json emits the findings as a single JSON array (sorted by position,
// like the text output) for machine consumption; the exit status
// contract is unchanged. The -*depth flags bound how many static call
// edges the interprocedural analyzers follow (0 disables the
// interprocedural part of lockedblocking).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sdme/internal/lint"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdme-vet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	list := flag.Bool("list", false, "list the available analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	showTypeErrs := flag.Bool("typeerrors", false, "also print type-checker errors encountered while loading")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	lockDepth := flag.Int("lockdepth", lint.LockedBlockingDepth, "call depth for interprocedural lockedblocking (0 = intraprocedural only)")
	taintDepth := flag.Int("taintdepth", lint.WireTaintDepth, "call depth for wiretaint sink summaries")
	leakDepth := flag.Int("leakdepth", lint.GoroutineLeakDepth, "call depth for goroutineleak stop-path search")
	flag.Parse()
	lint.LockedBlockingDepth = *lockDepth
	lint.WireTaintDepth = *taintDepth
	lint.GoroutineLeakDepth = *leakDepth

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return 0, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		return 0, err
	}
	if *showTypeErrs {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "sdme-vet: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, diags); err != nil {
			return 0, err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sdme-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1, nil
	}
	return 0, nil
}

// jsonDiag is the machine-readable finding shape; fields are stable API
// for CI tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics (already position-sorted by lint.Run)
// as one indented JSON array. An empty run emits [] so consumers always
// parse valid JSON.
func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
