// Command sdme-topo inspects the generated topologies: node/link
// statistics, middlebox placement, OSPF routing tables and the
// controller's candidate assignments.
//
// Usage:
//
//	sdme-topo [-topology campus|waxman] [-seed 20] [-routes edge1]
//	          [-candidates proxy-edge1]
package main

import (
	"flag"
	"fmt"
	"os"

	"sdme/internal/controller"
	"sdme/internal/experiments"
	"sdme/internal/ospf"
	"sdme/internal/topo"
	"sdme/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sdme-topo:", err)
		os.Exit(1)
	}
}

func run() error {
	topoName := flag.String("topology", "campus", "campus or waxman")
	seed := flag.Int64("seed", 20, "deterministic seed")
	routesOf := flag.String("routes", "", "print the OSPF routing table of this node name")
	candidatesOf := flag.String("candidates", "", "print the candidate sets M_x^e of this node name")
	exportPath := flag.String("export", "", "write the full controller configuration as JSON to this file")
	audit := flag.Bool("audit", false, "build the default deployment and audit enforceability of every policy")
	verifyPlan := flag.Bool("verify", false, "statically verify the controller's plan (candidate sets and LB weights) before any install")
	flag.Parse()

	bed, err := experiments.NewBed(experiments.Config{Topology: *topoName, Seed: *seed, PoliciesPerClass: 1})
	if err != nil {
		return err
	}
	g := bed.Graph
	s := g.Summarize()
	fmt.Printf("topology %s (seed %d)\n", *topoName, *seed)
	fmt.Printf("  nodes: %d (core %d, edge %d, gateways %d, middleboxes %d, proxies %d)\n",
		s.Nodes, s.Core, s.Edge, s.Gateways, s.Middleboxes, s.Proxies)
	fmt.Printf("  links: %d, router degree %d..%d, connected=%v\n",
		s.Links, s.MinRouterDegree, s.MaxRouterDeg, s.ConnectedRouters)

	fmt.Println("\nmiddlebox placement:")
	for _, id := range bed.Dep.MBNodes {
		n := g.Node(id)
		fmt.Printf("  %-8s %-14s attached to %s\n", n.Name, n.Addr, g.Node(n.Attach).Name)
	}

	findByName := func(name string) (topo.NodeID, bool) {
		for i := 0; i < g.NumNodes(); i++ {
			if g.Node(topo.NodeID(i)).Name == name {
				return topo.NodeID(i), true
			}
		}
		return topo.InvalidNode, false
	}

	if *routesOf != "" {
		id, ok := findByName(*routesOf)
		if !ok {
			return fmt.Errorf("no node named %q", *routesOf)
		}
		dom := ospf.NewDomain(g)
		stats := dom.Converge()
		fmt.Printf("\nOSPF: %d rounds, %d messages; routing table of %s:\n",
			stats.Rounds, stats.Messages, *routesOf)
		for _, e := range dom.Table(id).Entries() {
			target := "local"
			if !e.Route.Local {
				target = "via " + g.Node(e.Route.NextHop).Name
			} else if e.Route.NextHop != id {
				target = "deliver to " + g.Node(e.Route.NextHop).Name
			}
			fmt.Printf("  %-18s cost %-4.0f %s\n", e.Prefix, e.Route.Cost, target)
		}
	}

	if *verifyPlan {
		if err := runVerify(bed); err != nil {
			return err
		}
	}

	if *audit {
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{K: controller.DefaultK()})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			return err
		}
		vs := ctl.Audit(nodes)
		if len(vs) == 0 {
			fmt.Printf("\naudit: all %d policies enforceable from all %d subnets\n",
				bed.Table.Len(), bed.Dep.NumSubnets())
		} else {
			fmt.Printf("\naudit: %d violations\n", len(vs))
			for _, v := range vs {
				fmt.Println("  " + v.String())
			}
		}
	}

	if *exportPath != "" {
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{K: controller.DefaultK()})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			return err
		}
		f, err := os.Create(*exportPath)
		if err != nil {
			return err
		}
		if err := ctl.ExportConfig(nodes).WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *exportPath, err)
		}
		fmt.Printf("\nconfiguration exported to %s\n", *exportPath)
	}

	if *candidatesOf != "" {
		id, ok := findByName(*candidatesOf)
		if !ok {
			return fmt.Errorf("no node named %q", *candidatesOf)
		}
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
			K: controller.DefaultK(),
		})
		fmt.Printf("\ncandidate sets M_x^e of %s (closest first):\n", *candidatesOf)
		cands := ctl.CandidatesOf(id)
		for _, f := range experiments.Funcs {
			list, ok := cands[f]
			if !ok {
				continue
			}
			fmt.Printf("  %-4s:", f)
			for _, mb := range list {
				fmt.Printf(" %s(d=%.0f)", g.Node(mb).Name, bed.AllPairs.Dist(id, mb))
			}
			fmt.Println()
		}
	}
	return nil
}

// runVerify statically verifies the default controller plan for the bed:
// first the pre-install invariants over the candidate assignments, then
// the lb-weights invariant over an LB solution solved against a
// synthetic demand set. A plan with hard violations fails the command.
func runVerify(bed *experiments.Bed) error {
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{K: controller.DefaultK()})
	vs := ctl.VerifyPlan(nil)
	fmt.Printf("\nplan verification (coverage, loop-freedom, hp-optimality, failed-candidate):\n")
	report := func(vs []verify.Violation) {
		for _, v := range vs {
			fmt.Println("  " + v.String())
		}
	}
	if len(vs) == 0 {
		fmt.Printf("  ok: %d nodes, %d policies, no violations\n",
			len(bed.Dep.ProxyNodes)+len(bed.Dep.MBNodes), bed.Table.Len())
	} else {
		report(vs)
	}

	meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, bed.GenerateDemands(100000))
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		return fmt.Errorf("solve LB for verification: %w", err)
	}
	wvs := ctl.VerifyPlan(sol.Weights)
	fmt.Printf("plan verification (lb-weights, λ=%.3f, %d weighted nodes):\n", sol.Lambda, len(sol.Weights))
	if len(wvs) == 0 {
		fmt.Println("  ok: no violations")
	} else {
		report(wvs)
	}
	if err := verify.AsError(append(vs, wvs...)); err != nil {
		return err
	}
	return nil
}
