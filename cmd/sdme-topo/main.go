// Command sdme-topo inspects the generated topologies: node/link
// statistics, middlebox placement, OSPF routing tables and the
// controller's candidate assignments.
//
// Usage:
//
//	sdme-topo [-topology campus|waxman] [-seed 20] [-routes edge1]
//	          [-candidates proxy-edge1] [-observe]
//
// -observe runs the unified observability layer over the simulated
// dataplane: it injects enforced flows with the metrics registry and
// the runtime packet tracer attached, differentially checks every
// sampled runtime trace against the static plan for both the HP and LB
// selectors, and prints a virtual-time metrics exposition excerpt.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/ospf"
	"sdme/internal/sim"
	"sdme/internal/topo"
	"sdme/internal/verify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sdme-topo:", err)
		os.Exit(1)
	}
}

func run() error {
	topoName := flag.String("topology", "campus", "campus or waxman")
	seed := flag.Int64("seed", 20, "deterministic seed")
	routesOf := flag.String("routes", "", "print the OSPF routing table of this node name")
	candidatesOf := flag.String("candidates", "", "print the candidate sets M_x^e of this node name")
	exportPath := flag.String("export", "", "write the full controller configuration as JSON to this file")
	audit := flag.Bool("audit", false, "build the default deployment and audit enforceability of every policy")
	verifyPlan := flag.Bool("verify", false, "statically verify the controller's plan (candidate sets and LB weights) before any install")
	observe := flag.Bool("observe", false, "run observed simulation: runtime traces vs static plans, plus a metrics exposition excerpt")
	observeFlows := flag.Int("observe-flows", 50, "enforced flows per selector for -observe")
	flag.Parse()

	bed, err := experiments.NewBed(experiments.Config{Topology: *topoName, Seed: *seed, PoliciesPerClass: 1})
	if err != nil {
		return err
	}
	g := bed.Graph
	s := g.Summarize()
	fmt.Printf("topology %s (seed %d)\n", *topoName, *seed)
	fmt.Printf("  nodes: %d (core %d, edge %d, gateways %d, middleboxes %d, proxies %d)\n",
		s.Nodes, s.Core, s.Edge, s.Gateways, s.Middleboxes, s.Proxies)
	fmt.Printf("  links: %d, router degree %d..%d, connected=%v\n",
		s.Links, s.MinRouterDegree, s.MaxRouterDeg, s.ConnectedRouters)

	fmt.Println("\nmiddlebox placement:")
	for _, id := range bed.Dep.MBNodes {
		n := g.Node(id)
		fmt.Printf("  %-8s %-14s attached to %s\n", n.Name, n.Addr, g.Node(n.Attach).Name)
	}

	findByName := func(name string) (topo.NodeID, bool) {
		for i := 0; i < g.NumNodes(); i++ {
			if g.Node(topo.NodeID(i)).Name == name {
				return topo.NodeID(i), true
			}
		}
		return topo.InvalidNode, false
	}

	if *routesOf != "" {
		id, ok := findByName(*routesOf)
		if !ok {
			return fmt.Errorf("no node named %q", *routesOf)
		}
		dom := ospf.NewDomain(g)
		stats := dom.Converge()
		fmt.Printf("\nOSPF: %d rounds, %d messages; routing table of %s:\n",
			stats.Rounds, stats.Messages, *routesOf)
		for _, e := range dom.Table(id).Entries() {
			target := "local"
			if !e.Route.Local {
				target = "via " + g.Node(e.Route.NextHop).Name
			} else if e.Route.NextHop != id {
				target = "deliver to " + g.Node(e.Route.NextHop).Name
			}
			fmt.Printf("  %-18s cost %-4.0f %s\n", e.Prefix, e.Route.Cost, target)
		}
	}

	if *verifyPlan {
		if err := runVerify(bed); err != nil {
			return err
		}
	}

	if *audit {
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{K: controller.DefaultK()})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			return err
		}
		vs := ctl.Audit(nodes)
		if len(vs) == 0 {
			fmt.Printf("\naudit: all %d policies enforceable from all %d subnets\n",
				bed.Table.Len(), bed.Dep.NumSubnets())
		} else {
			fmt.Printf("\naudit: %d violations\n", len(vs))
			for _, v := range vs {
				fmt.Println("  " + v.String())
			}
		}
	}

	if *exportPath != "" {
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{K: controller.DefaultK()})
		nodes, err := ctl.BuildNodes()
		if err != nil {
			return err
		}
		f, err := os.Create(*exportPath)
		if err != nil {
			return err
		}
		if err := ctl.ExportConfig(nodes).WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *exportPath, err)
		}
		fmt.Printf("\nconfiguration exported to %s\n", *exportPath)
	}

	if *observe {
		if err := runObserve(*topoName, *seed, *observeFlows); err != nil {
			return err
		}
	}

	if *candidatesOf != "" {
		id, ok := findByName(*candidatesOf)
		if !ok {
			return fmt.Errorf("no node named %q", *candidatesOf)
		}
		ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
			K: controller.DefaultK(),
		})
		fmt.Printf("\ncandidate sets M_x^e of %s (closest first):\n", *candidatesOf)
		cands := ctl.CandidatesOf(id)
		for _, f := range experiments.Funcs {
			list, ok := cands[f]
			if !ok {
				continue
			}
			fmt.Printf("  %-4s:", f)
			for _, mb := range list {
				fmt.Printf(" %s(d=%.0f)", g.Node(mb).Name, bed.AllPairs.Dist(id, mb))
			}
			fmt.Println()
		}
	}
	return nil
}

// runObserve drives the observability layer end to end on the simulated
// dataplane: for each selector it injects enforced flows with metrics
// and tracing attached and reports whether every sampled runtime trace
// reproduced the static plan, then prints an exposition excerpt.
func runObserve(topology string, seed int64, flows int) error {
	fmt.Printf("\nobserved simulation (%d enforced flows per selector):\n", flows)
	var last *experiments.ObservedRun
	for _, strat := range []enforce.Strategy{enforce.HotPotato, enforce.LoadBalanced} {
		// A fresh bed per selector: the flow draw consumes the bed's rng,
		// so both selectors see the same workload.
		bed, err := experiments.NewBed(experiments.Config{Topology: topology, Seed: seed, PoliciesPerClass: 4})
		if err != nil {
			return err
		}
		run, err := bed.RunObserved(experiments.ObserveConfig{
			Strategy: strat, Flows: flows, SnapshotEveryUS: 100_000,
		})
		if err != nil {
			return fmt.Errorf("observe %v: %w", strat, err)
		}
		status := "all runtime traces match the static plans"
		if n := len(run.Mismatches); n > 0 {
			status = fmt.Sprintf("%d MISMATCHES", n)
		}
		extra := ""
		if strat == enforce.LoadBalanced {
			extra = fmt.Sprintf(", λ=%.0f", run.Lambda)
		}
		fmt.Printf("  %-4v %d flows, %d hop records sampled%s: %s\n",
			strat, len(run.Flows), run.Tracer.Total(), extra, status)
		for _, m := range run.Mismatches {
			fmt.Println("    " + m.String())
		}
		if last = run; strat == enforce.HotPotato && len(run.Flows) > 0 {
			g := bed.Graph
			ft := run.Flows[0]
			fmt.Printf("  example: flow %v\n", ft)
			for _, h := range run.Tracer.FlowRecords(ft) {
				fn := ""
				if h.Func != 0 {
					fn = " " + h.Func.String()
				}
				wait := ""
				if h.WaitUS > 0 {
					wait = fmt.Sprintf(" (queued %dus)", h.WaitUS)
				}
				fmt.Printf("    t=%-6dus %-12s %v%s%s\n", h.AtUS, g.Node(h.Node).Name, h.Event, fn, wait)
			}
		}
	}

	snaps := last.Network.Snapshots()
	fmt.Printf("\n  %d virtual-time registry snapshots taken; final exposition excerpt:\n", len(snaps))
	families := []string{
		sim.MetricDelivered, sim.MetricE2ELatency, enforce.MetricFuncPkts,
		controller.MetricLambda, controller.MetricSolves,
	}
	sc := bufio.NewScanner(bytes.NewReader(last.Registry.Snapshot().Text))
	shown := 0
	for sc.Scan() && shown < 14 {
		line := sc.Text()
		for _, f := range families {
			if strings.HasPrefix(line, f) {
				fmt.Println("    " + line)
				shown++
				break
			}
		}
	}
	return nil
}

// runVerify statically verifies the default controller plan for the bed:
// first the pre-install invariants over the candidate assignments, then
// the lb-weights invariant over an LB solution solved against a
// synthetic demand set. A plan with hard violations fails the command.
func runVerify(bed *experiments.Bed) error {
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{K: controller.DefaultK()})
	vs := ctl.VerifyPlan(nil)
	fmt.Printf("\nplan verification (coverage, loop-freedom, hp-optimality, failed-candidate):\n")
	report := func(vs []verify.Violation) {
		for _, v := range vs {
			fmt.Println("  " + v.String())
		}
	}
	if len(vs) == 0 {
		fmt.Printf("  ok: %d nodes, %d policies, no violations\n",
			len(bed.Dep.ProxyNodes)+len(bed.Dep.MBNodes), bed.Table.Len())
	} else {
		report(vs)
	}

	meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, bed.GenerateDemands(100000))
	sol, err := ctl.SolveLB(meas)
	if err != nil {
		return fmt.Errorf("solve LB for verification: %w", err)
	}
	wvs := ctl.VerifyPlan(sol.Weights)
	fmt.Printf("plan verification (lb-weights, λ=%.3f, %d weighted nodes):\n", sol.Lambda, len(sol.Weights))
	if len(wvs) == 0 {
		fmt.Println("  ok: no violations")
	} else {
		report(wvs)
	}
	if err := verify.AsError(append(vs, wvs...)); err != nil {
		return err
	}
	return nil
}
