// Command sdme-bench regenerates every table and figure of the paper's
// evaluation (plus the repository's extension ablations) and writes them
// as CSV and Markdown under an output directory.
//
// Usage:
//
//	sdme-bench [-suite paper|dataplane|churn] [-out results] [-seed 20] [-quick] [-smoke]
//
// -quick runs a reduced traffic sweep (useful for smoke checks); the
// default regenerates the full 1M–10M packet series of Figures 4 and 5.
//
// -suite dataplane runs the sharded-dataplane throughput/latency grid
// (workers × shards on both substrates) and writes
// results/bench_dataplane.json; it exits nonzero if the simulated
// substrate fails the ≥2× 16-vs-1-worker scaling gate. -smoke shrinks it
// for CI.
//
// -suite churn replays randomized policy/node/demand churn through the
// full-rebuild and incremental compilation pipelines and writes
// results/bench_churn.json (recompute latency, pushed bytes full vs
// delta per churn rate); it exits nonzero if the incremental rollout
// fails the ≤0.5× byte gate at the lowest rate. -smoke shrinks it for
// CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sdme/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sdme-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "results", "output directory for CSV/Markdown artifacts")
	seed := flag.Int64("seed", 20, "seed for topology, placement and workload")
	quick := flag.Bool("quick", false, "reduced sweep for smoke checks")
	multiseed := flag.Int("multiseed", 0, "additionally average the campus point over N seeds")
	suite := flag.String("suite", "paper", "benchmark suite: paper (figures/tables), dataplane (worker/shard scaling) or churn (incremental pipeline)")
	smoke := flag.Bool("smoke", false, "dataplane/churn suites only: reduced sizes for CI")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	switch *suite {
	case "dataplane":
		return runDataplaneSuite(*out, *seed, *smoke)
	case "churn":
		return runChurnSuite(*out, *seed, *smoke)
	case "paper":
	default:
		return fmt.Errorf("unknown suite %q (want paper, dataplane or churn)", *suite)
	}
	traffic := []int(nil) // default: paper's 1M..10M
	tablePoint := 10000000
	if *quick {
		traffic = []int{200000, 400000}
		tablePoint = 400000
	}

	md, err := os.Create(filepath.Join(*out, "EXPERIMENTS.generated.md"))
	if err != nil {
		return err
	}
	// Backstop for early error returns; the success path closes
	// explicitly below so a flush failure is not silently dropped.
	defer func() { _ = md.Close() }()
	fmt.Fprintf(md, "# Generated experiment results\n\nseed %d, generated %s\n",
		*seed, time.Now().UTC().Format(time.RFC3339))

	for _, topoName := range []string{"campus", "waxman"} {
		start := time.Now()
		res, err := experiments.RunMaxLoadFigure(experiments.Config{
			Topology: topoName, Seed: *seed, TrafficPoints: traffic,
		})
		if err != nil {
			return fmt.Errorf("figure on %s: %w", topoName, err)
		}
		csvPath := filepath.Join(*out, "figure_"+topoName+".csv")
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := experiments.WriteFigureCSV(f, res); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", csvPath, err)
		}
		figNum := 4
		if topoName == "waxman" {
			figNum = 5
		}
		fmt.Fprintf(md, "\n## Figure %d (%s topology)\n%s", figNum, topoName, experiments.FigureMarkdown(res))
		fmt.Printf("figure %d (%s): %d points -> %s (%v)\n",
			figNum, topoName, len(res.Points), csvPath, time.Since(start).Round(time.Millisecond))
	}

	rows, err := experiments.RunLoadDistributionTable(experiments.Config{
		Topology: "campus", Seed: *seed,
	}, tablePoint)
	if err != nil {
		return fmt.Errorf("table III: %w", err)
	}
	f, err := os.Create(filepath.Join(*out, "table3.csv"))
	if err != nil {
		return err
	}
	if err := experiments.WriteTableCSV(f, rows); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close table3.csv: %w", err)
	}
	fmt.Fprintf(md, "\n## Table III (campus, %d packets)\n\n%s", tablePoint, experiments.TableMarkdown(rows))
	fmt.Println("table III -> " + filepath.Join(*out, "table3.csv"))

	kPoints, err := experiments.RunCandidateKAblation(experiments.Config{
		Topology: "campus", Seed: *seed,
	}, tablePoint/5, []int{1, 2, 4, 7})
	if err != nil {
		return fmt.Errorf("k ablation: %w", err)
	}
	fmt.Fprintf(md, "\n## Ablation A: candidate-set size k\n\n%s", experiments.KAblationMarkdown(kPoints))

	off, err := experiments.RunStateAblation(*seed, 150, 6, 1480, false)
	if err != nil {
		return fmt.Errorf("state ablation (tunnel): %w", err)
	}
	on, err := experiments.RunStateAblation(*seed, 150, 6, 1480, true)
	if err != nil {
		return fmt.Errorf("state ablation (labels): %w", err)
	}
	fmt.Fprintf(md, "\n## Ablation B: flow table & label switching\n\n%s", experiments.StateAblationMarkdown(off, on))

	base, stretch, err := experiments.RunPathStretch(experiments.Config{
		Topology: "campus", Seed: *seed,
	}, tablePoint/5)
	if err != nil {
		return fmt.Errorf("path stretch: %w", err)
	}
	fmt.Fprintf(md, "\n## Ablation D: path stretch\n\n%s", experiments.StretchMarkdown(base, stretch))

	qpoints, err := experiments.RunQueueingAblation(*seed, 120, 40, 9000)
	if err != nil {
		return fmt.Errorf("queueing ablation: %w", err)
	}
	fmt.Fprintf(md, "\n## Ablation E: latency under finite middlebox capacity\n\n%s", experiments.QueueingMarkdown(qpoints))

	drift, err := experiments.RunDriftExperiment(experiments.Config{
		Topology: "campus", Seed: *seed,
	}, tablePoint/10, 6)
	if err != nil {
		return fmt.Errorf("drift: %w", err)
	}
	fmt.Fprintf(md, "\n## Ablation F: periodic rebalancing under traffic drift\n\n%s", experiments.DriftMarkdown(drift))

	cmp, err := experiments.RunEq1VsEq2(experiments.Config{
		Topology: "campus", Seed: *seed, PoliciesPerClass: 3,
	}, tablePoint/20)
	if err != nil {
		return fmt.Errorf("formulation ablation: %w", err)
	}
	fmt.Fprintf(md, "\n## Ablation C: Eq. (1) vs Eq. (2)\n\n%s", experiments.FormulationMarkdown(cmp))

	recCfg := experiments.RecoveryConfig{Seed: *seed}
	if *quick {
		recCfg.Flows = 20
		recCfg.PacketsPerFlow = 100
	}
	start := time.Now()
	recRes, err := experiments.RunRecoveryExperiments(recCfg)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	recPath := filepath.Join(*out, "recovery.csv")
	rf, err := os.Create(recPath)
	if err != nil {
		return err
	}
	if err := experiments.WriteRecoveryCSV(rf, recRes); err != nil {
		_ = rf.Close()
		return err
	}
	if err := rf.Close(); err != nil {
		return fmt.Errorf("close recovery.csv: %w", err)
	}
	fmt.Fprintf(md, "\n## Recovery convergence under the acceptance fault schedule\n\n%s", experiments.RecoveryMarkdown(recRes))
	fmt.Printf("recovery: %d substrates -> %s (%v)\n", len(recRes), recPath, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	var failRes []experiments.FailoverResult
	var restRes []experiments.RestartResult
	for _, runFO := range []func(experiments.FailoverConfig) (*experiments.FailoverResult, error){
		experiments.RunSimFailover, experiments.RunLiveFailover,
	} {
		r, err := runFO(experiments.FailoverConfig{Seed: *seed})
		if err != nil {
			return fmt.Errorf("failover: %w", err)
		}
		failRes = append(failRes, *r)
	}
	for _, runRS := range []func(experiments.RestartConfig) (*experiments.RestartResult, error){
		experiments.RunSimRestart, experiments.RunLiveRestart,
	} {
		r, err := runRS(experiments.RestartConfig{Seed: *seed})
		if err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		restRes = append(restRes, *r)
	}
	foPath := filepath.Join(*out, "failover.csv")
	ff, err := os.Create(foPath)
	if err != nil {
		return err
	}
	if err := experiments.WriteSurvivabilityCSV(ff, failRes, restRes); err != nil {
		_ = ff.Close()
		return err
	}
	if err := ff.Close(); err != nil {
		return fmt.Errorf("close failover.csv: %w", err)
	}
	fmt.Fprintf(md, "\n## Local fast failover and controller restart\n\n%s", experiments.SurvivabilityMarkdown(failRes, restRes))
	fmt.Printf("survivability: %d failover + %d restart runs -> %s (%v)\n",
		len(failRes), len(restRes), foPath, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	haRes, err := experiments.RunHAExperiments(experiments.HAConfig{Seed: *seed})
	if err != nil {
		return fmt.Errorf("controller HA: %w", err)
	}
	haPath := filepath.Join(*out, "ha.csv")
	hf, err := os.Create(haPath)
	if err != nil {
		return err
	}
	if err := experiments.WriteHACSV(hf, haRes); err != nil {
		_ = hf.Close()
		return err
	}
	if err := hf.Close(); err != nil {
		return fmt.Errorf("close ha.csv: %w", err)
	}
	fmt.Fprintf(md, "\n## Replicated controller HA: fenced takeover\n\n%s", experiments.HAMarkdown(haRes))
	fmt.Printf("controller HA: %d takeover runs -> %s (%v)\n",
		len(haRes), haPath, time.Since(start).Round(time.Millisecond))

	if *multiseed > 1 {
		seeds := make([]int64, *multiseed)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		sum, err := experiments.RunMultiSeed(experiments.Config{Topology: "campus"}, tablePoint/5, seeds)
		if err != nil {
			return fmt.Errorf("multiseed: %w", err)
		}
		fmt.Fprintf(md, "\n## Cross-seed robustness\n\n%s", experiments.MultiSeedMarkdown(sum))
		fmt.Printf("multi-seed summary over %d seeds\n", *multiseed)
	}

	if err := md.Close(); err != nil {
		return fmt.Errorf("close %s: %w", md.Name(), err)
	}
	fmt.Println("markdown -> " + md.Name())
	return nil
}

// runDataplaneSuite runs the worker×shard throughput/latency grid and
// enforces the simulated substrate's scaling gate.
func runDataplaneSuite(out string, seed int64, smoke bool) error {
	cfg := experiments.DataplaneConfig{Seed: seed}
	if smoke {
		cfg.SimPackets = 30000
		cfg.LivePackets = 800
		cfg.Flows = 128
	}
	start := time.Now()
	res, err := experiments.RunDataplaneBench(cfg)
	if err != nil {
		return err
	}
	res.Generated = time.Now().UTC().Format(time.RFC3339)
	path := filepath.Join(out, "bench_dataplane.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteDataplaneJSON(f, res); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Print(experiments.DataplaneMarkdown(res))
	fmt.Printf("dataplane: %d points -> %s (%v)\n",
		len(res.Points), path, time.Since(start).Round(time.Millisecond))
	if !res.Gate.Pass {
		return fmt.Errorf("scaling gate failed: sim %dw/%ds speedup %.2fx < %.1fx",
			res.Gate.Workers, res.Gate.Shards, res.Gate.Measured, res.Gate.MinSpeedup)
	}
	return nil
}

// runChurnSuite runs the full-vs-incremental churn grid and enforces
// the pushed-bytes gate at the lowest churn rate.
func runChurnSuite(out string, seed int64, smoke bool) error {
	cfg := experiments.ChurnConfig{Seed: seed}
	if smoke {
		cfg.Steps = 12
		cfg.Rates = []int{1, 4}
		cfg.PoliciesPerClass = 3
		cfg.DemandTarget = 4000
	}
	start := time.Now()
	res, err := experiments.RunChurnBench(cfg)
	if err != nil {
		return err
	}
	res.Generated = time.Now().UTC().Format(time.RFC3339)
	path := filepath.Join(out, "bench_churn.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteChurnJSON(f, res); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Print(experiments.ChurnMarkdown(res))
	fmt.Printf("churn: %d points -> %s (%v)\n",
		len(res.Points), path, time.Since(start).Round(time.Millisecond))
	if !res.Gate.Pass {
		return fmt.Errorf("churn byte gate failed: rate-%d incremental/full ratio %.3f > %.2f",
			res.Gate.Rate, res.Gate.Measured, res.Gate.MaxRatio)
	}
	return nil
}
