// Command sdme-live demonstrates the complete architecture over real
// sockets on loopback:
//
//   - every proxy and middlebox runs as a goroutine with its own UDP
//     socket (the dataplane);
//   - a management server (the controller) pushes each node's
//     configuration over TCP through per-device agents (§III-A);
//   - proxies report traffic measurements back over the same channel
//     (§III-C), the controller solves the load-balancing LP and pushes
//     weight updates without disturbing flow state;
//   - IP-over-IP tunnels carry first packets, §III-E control messages
//     flip flows to label switching.
//
// Usage:
//
//	sdme-live [-seed 20] [-packets 10] [-labels=true]
//	          [-metrics-addr 127.0.0.1:9090] [-hold 30s] [-peers 3]
//
// With -metrics-addr the process serves the unified observability
// surface over HTTP: Prometheus text exposition on /metrics (dataplane,
// fabric, management-channel and controller families) and the standard
// net/http/pprof endpoints under /debug/pprof/. -hold keeps the process
// alive after the demo so the endpoints can be scraped interactively.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/live"
	"sdme/internal/metrics"
	"sdme/internal/mgmt"
	"sdme/internal/netaddr"
	"sdme/internal/packet"
	"sdme/internal/policy"
	"sdme/internal/route"
	"sdme/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sdme-live:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 20, "deterministic seed")
	packets := flag.Int("packets", 10, "packets to send on the demo flow")
	labels := flag.Bool("labels", true, "enable §III-E label switching")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address (empty: disabled)")
	traceOneIn := flag.Uint64("trace-one-in", 1, "runtime packet tracing sample rate (1 = every flow, 0 = off)")
	hold := flag.Duration("hold", 0, "keep serving the metrics endpoint this long after the demo")
	journalPath := flag.String("journal", "", "controller write-ahead journal: replayed on start if present, appended during the run (empty: disabled)")
	twophase := flag.Bool("twophase", true, "push the initial plan with the epoch-fenced prepare/commit protocol")
	peers := flag.Int("peers", 0, "controller replicas; >0 runs the replicated-HA takeover demo over real sockets instead of the single-controller demo")
	workers := flag.Int("workers", 0, "dataplane workers per device (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 16, "flow/label table shards per device (local tuning, survives config pushes)")
	flag.Parse()

	if *peers > 0 {
		return runLiveHA(*peers, *seed)
	}

	rng := rand.New(rand.NewSource(*seed))
	g := topo.Campus(topo.CampusConfig{Gateways: 2, CoreRouters: 4, EdgeRouters: 2, WithProxies: true}, rng)
	dep, err := enforce.NewDeployment(g)
	if err != nil {
		return err
	}
	cores := g.NodesOfKind(topo.KindCoreRouter)
	dep.AddMiddlebox(cores[0], "fw1", policy.FuncFW)
	dep.AddMiddlebox(cores[2], "fw2", policy.FuncFW)
	dep.AddMiddlebox(cores[1], "ids1", policy.FuncIDS)

	tbl := policy.NewTable()
	d := policy.NewDescriptor()
	d.DstPort = netaddr.SinglePort(80)
	tbl.Add(d, policy.ActionList{policy.FuncFW, policy.FuncIDS})

	ap := route.NewAllPairs(g, route.RouterTransitOnly(g))
	ctl := controller.New(dep, ap, tbl, controller.Options{
		Strategy:       enforce.LoadBalanced,
		K:              map[policy.FuncType]int{policy.FuncFW: 2, policy.FuncIDS: 1},
		LabelSwitching: *labels,
	})

	// Crash recovery: an existing journal is replayed into the controller
	// (failed set, weight plan, epoch high-water) before any plan is
	// computed, then reopened for appending so this run's state survives
	// the next restart.
	var jst *controller.JournalState
	if *journalPath != "" {
		if _, err := os.Stat(*journalPath); err == nil {
			st, err := controller.ReplayJournal(*journalPath)
			if err != nil {
				return err
			}
			if st.Records > 0 {
				if err := ctl.RestoreFromJournal(st); err != nil {
					return err
				}
				jst = st
				fmt.Printf("journal: replayed %d records (epoch %d, %d failed middleboxes, torn tail: %v)\n",
					st.Records, st.Epoch, len(st.Failed), st.Torn)
			}
		}
		jrnl, err := controller.OpenJournal(*journalPath)
		if err != nil {
			return err
		}
		defer jrnl.Close()
		if err := ctl.SetJournal(jrnl); err != nil {
			return err
		}
	}

	nodes, err := ctl.BuildNodes()
	if err != nil {
		return err
	}
	if jst != nil {
		if sol := jst.RestoredSolution(); sol != nil {
			controller.ApplyWeights(nodes, sol)
			fmt.Printf("journal: reapplied recovered LB weight plan (λ=%.0f)\n", sol.Lambda)
		}
	}

	// Management server: collects measurement reports as they arrive.
	var measMu sync.Mutex
	meas := make(controller.Measurements)
	server, err := mgmt.NewServer("127.0.0.1:0", func(_ topo.NodeID, rows []mgmt.MeasureRow) {
		measMu.Lock()
		defer measMu.Unlock()
		for _, r := range rows {
			meas[enforce.MeasKey{PolicyID: r.PolicyID, SrcSubnet: r.SrcSubnet, DstSubnet: r.DstSubnet}] += r.Packets
		}
	})
	if err != nil {
		return err
	}
	defer server.Close()
	if jst != nil {
		server.ResumeEpoch(jst.Epoch)
	}
	fmt.Printf("controller management server on %s\n\n", server.Addr())

	// Dataplane devices + their management agents.
	rt := live.NewRuntime()
	defer rt.Close()
	rt.SetDefaultWorkers(*workers)

	// Observability: one registry on the runtime's wall clock, shared by
	// the fabric, the dataplane nodes, the management channel and the
	// controller; plus a runtime packet tracer sampling the demo flows.
	reg := rt.NewRegistry()
	rt.AttachMetrics(reg)
	server.SetMetrics(reg)
	ctl.SetMetrics(reg, rt.NowUS)
	tracer := enforce.NewRuntimeTracer(0, *traceOneIn, uint64(*seed))
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, metrics.ServeMux(reg)) }()
		fmt.Printf("observability on http://%s/metrics and /debug/pprof/\n\n", ln.Addr())
	}

	devices := make(map[topo.NodeID]*live.Device)
	var agents []*mgmt.Agent
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	var ids []topo.NodeID
	for id, n := range nodes {
		// Attach before AddDevice: the device goroutine owns the node
		// from then on. Shard tuning is local (never on the wire), so it
		// is set here and re-applied by every subsequent config install.
		n.SetMetrics(reg)
		n.SetTracer(tracer)
		if *shards > 0 {
			n.SetShardTuning(*shards, *shards)
			if err := n.Install(n.Config()); err != nil {
				return err
			}
		}
		dev, err := rt.AddDevice(n)
		if err != nil {
			return err
		}
		devices[id] = dev
		agent, err := mgmt.NewAgentWith(dev, server.Addr(), mgmt.AgentOptions{
			ReportEvery: 50 * time.Millisecond,
			Metrics:     reg,
		})
		if err != nil {
			return err
		}
		agents = append(agents, agent)
		ids = append(ids, id)
		fmt.Printf("  %-12s dataplane %-14s agent connected over TCP\n", g.Node(id).Name, n.Addr)
	}
	if !server.WaitConnected(3*time.Second, ids...) {
		return fmt.Errorf("agents failed to connect")
	}

	// Push every node's configuration over the wire. The epoch-fenced
	// prepare/commit batch guarantees the fleet never mixes plan
	// generations: every node stages, then all flip atomically (a single
	// refusal rolls the whole batch back). The plain path rides the same
	// self-healing channel with per-node retries instead.
	pushPol := mgmt.RetryPolicy{Attempts: 3, PerAttempt: 3 * time.Second, Backoff: 50 * time.Millisecond}
	if *twophase {
		plans := make(map[topo.NodeID]mgmt.ConfigDTO, len(nodes))
		for id, n := range nodes {
			plans[id] = mgmt.ConfigToDTO(0, n.Config())
		}
		epoch, err := server.PushAll2PC(plans, pushPol)
		if err != nil {
			return err
		}
		fmt.Printf("\nconfiguration committed on %d nodes via prepare/commit (epoch %d)\n",
			len(nodes), epoch)
	} else {
		for id, n := range nodes {
			if err := server.PushRetry(id, mgmt.ConfigToDTO(0, n.Config()), pushPol); err != nil {
				return err
			}
		}
		fmt.Printf("\nconfiguration pushed to %d nodes over the management channel (epoch %d)\n",
			len(nodes), server.Epoch())
	}
	if j := ctl.Journal(); j != nil {
		if err := j.LogEpoch(server.Epoch(), 0); err != nil {
			return err
		}
	}

	sink, err := rt.AddSink(topo.HostAddr(2, 1))
	if err != nil {
		return err
	}
	proxyID, _ := dep.ProxyFor(1)
	proxyAddr := dep.AddrOf(proxyID)
	flow := netaddr.FiveTuple{
		Src: topo.HostAddr(1, 1), Dst: topo.HostAddr(2, 1),
		SrcPort: 40000, DstPort: 80, Proto: netaddr.ProtoTCP,
	}
	// Static plan under the configuration the packets will actually run
	// under (the later LB re-solve changes the weights, so tracing after
	// it would compare against a different plan).
	planned, plannedErr := enforce.TraceFlow(nodes, dep, ap, flow)
	fmt.Printf("\nsending %d packets on flow %v\n", *packets, flow)

	if err := rt.Inject(proxyAddr, packet.New(flow, 64)); err != nil {
		return err
	}
	if *labels {
		ok := live.WaitUntil(3*time.Second, func() bool {
			return devices[proxyID].Counters().ControlRx >= 1
		})
		fmt.Printf("label-switch control message received by proxy: %v\n", ok)
	}
	for i := 1; i < *packets; i++ {
		if err := rt.Inject(proxyAddr, packet.New(flow, 64)); err != nil {
			return err
		}
	}
	if !live.WaitUntil(5*time.Second, func() bool { return sink.Received() >= *packets }) {
		return fmt.Errorf("sink received only %d of %d packets", sink.Received(), *packets)
	}
	fmt.Printf("sink received %d packets\n", sink.Received())

	// Wait for the proxy's measurement report, close the control loop.
	if !live.WaitUntil(3*time.Second, func() bool {
		measMu.Lock()
		defer measMu.Unlock()
		var total int64
		for _, v := range meas {
			total += v
		}
		return total >= int64(*packets)
	}) {
		return fmt.Errorf("measurements never reached the controller")
	}
	measMu.Lock()
	snapshot := make(controller.Measurements, len(meas))
	for k, v := range meas {
		snapshot[k] = v
	}
	measMu.Unlock()
	sol, err := ctl.SolveLB(snapshot)
	if err != nil {
		return err
	}
	for id := range nodes {
		if err := server.PushRetry(id, mgmt.WeightsToDTO(0, sol.Weights[id]), pushPol); err != nil {
			return err
		}
	}
	fmt.Printf("\n§III-C loop closed: proxies reported %d packets, controller solved λ=%.0f\n",
		sum(snapshot), sol.Lambda)
	fmt.Println("and pushed fresh LB weights over the management channel.")
	if j := ctl.Journal(); j != nil {
		if err := j.LogEpoch(server.Epoch(), 0); err != nil {
			return err
		}
		recs, bytes := j.Stats()
		fmt.Printf("journal: %d records (%d bytes) appended this run\n", recs, bytes)
	}

	fmt.Println("\nper-device dataplane counters:")
	for id, dev := range devices {
		c := dev.Counters()
		fmt.Printf("  %-12s in=%-4d load=%-4d tunnelTx=%-4d labelTx=%-4d classif=%-3d controlTx=%d controlRx=%d failovers=%d invalidated=%d\n",
			g.Node(id).Name, c.PacketsIn, c.Load, c.TunnelTx, c.LabelTx, c.Classified, c.ControlTx, c.ControlRx, c.Failovers, c.Invalidated)
	}

	// Management-channel health: on a clean loopback run every agent
	// holds its first connection (0 reconnects) and has acked the latest
	// epoch pushed to it.
	var reconnects, applies int64
	for _, a := range agents {
		st := a.Stats()
		reconnects += st.Reconnects
		applies += st.Applies
	}
	fmt.Printf("\nmanagement channel: epoch %d, converged %v, %d reconnects, %d configs applied\n",
		server.Epoch(), server.Converged(ids...), reconnects, applies)

	// Runtime trace vs static plan: the observability layer's core claim
	// is that the sampled per-packet hop records reproduce the verified
	// plan exactly.
	rtr := tracer.RuntimeTrace(flow)
	if len(rtr.Hops) > 0 && plannedErr == nil {
		fmt.Printf("\nruntime trace of %v (%d hop records sampled):\n", flow, tracer.Total())
		for _, h := range rtr.Hops[:min(len(rtr.Hops), len(planned.Hops))] {
			fmt.Printf("  %-12s ran %v\n", g.Node(h.Node).Name, h.Func)
		}
		// Every packet of the flow must walk the planned chain. Packets
		// pipeline, so hop records of different packets interleave; the
		// invariant that survives interleaving is per-(node, func) counts:
		// each planned hop seen exactly once per packet, nothing else.
		type hopKey struct {
			node topo.NodeID
			f    policy.FuncType
		}
		got := make(map[hopKey]int)
		for _, h := range rtr.Hops {
			got[hopKey{h.Node, h.Func}]++
		}
		n := len(rtr.Hops) / max(len(planned.Hops), 1)
		conforms := len(planned.Hops) > 0 && len(rtr.Hops) == n*len(planned.Hops)
		for _, p := range planned.Hops {
			if got[hopKey{p.Node, p.Func}] != n {
				conforms = false
			}
			delete(got, hopKey{p.Node, p.Func})
		}
		conforms = conforms && len(got) == 0
		fmt.Printf("matches static plan across %d packets: %v\n", n, conforms)
	}

	if *metricsAddr != "" && *hold > 0 {
		fmt.Printf("\nholding %v for metric scrapes...\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

// runLiveHA runs the replicated-controller takeover scenario over real
// sockets: N replicas elect a leader, the fleet converges on its plan,
// the leader is partitioned away mid-run, and a standby takes over with
// the agents re-homing via rotation and NotLeader redirects (DESIGN §11).
func runLiveHA(peers int, seed int64) error {
	fmt.Printf("replicated controller HA over real sockets: %d replicas, seed %d\n", peers, seed)
	res, err := experiments.RunLiveHA(experiments.HAConfig{Seed: seed, Replicas: peers})
	if err != nil {
		return err
	}
	fmt.Printf("first leader: replica %d at term %d\n", res.FirstLeader, res.FirstTerm)
	fmt.Printf("leader partitioned away; replica %d took over at term %d in %dus\n",
		res.FinalLeader, res.FinalTerm, res.TakeoverMaxUS)
	fmt.Printf("epochs: %d before -> %d after (resumed past the fenced high-water: %v)\n",
		res.EpochBefore, res.EpochAfter, res.Resumed)
	fmt.Printf("journal records replayed on takeover: %d\n", res.Records)
	fmt.Printf("exported plan byte-identical across the takeover: %v\n", res.ExportIdentical)
	fmt.Printf("fleet converged on the new leader's plan: %v\n", res.Converged)
	fmt.Printf("stale-term pushes refused (deposed server self-gate + agent fence): %v\n", res.StaleRejected)
	fmt.Printf("agent re-homing: %d reconnects, %d NotLeader redirects\n", res.Reconnects, res.Redirects)
	avail := 1.0
	if res.PushAttempts > 0 {
		avail = 1 - float64(res.PushFailures)/float64(res.PushAttempts)
	}
	fmt.Printf("plan-push availability through the takeover: %.1f%% (%d of %d probes failed)\n",
		100*avail, res.PushFailures, res.PushAttempts)
	if !res.ExportIdentical || !res.StaleRejected || !res.Resumed || !res.Converged {
		return fmt.Errorf("HA takeover degraded (see above)")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sum(m controller.Measurements) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}
