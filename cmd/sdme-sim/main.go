// Command sdme-sim runs one policy-enforcement experiment and prints the
// resulting per-middlebox load distribution.
//
// Usage:
//
//	sdme-sim [-topology campus|waxman] [-strategy hp|rand|lb]
//	         [-traffic 1000000] [-policies 10] [-seed 20] [-labels]
//	         [-packet-level] [-metrics out.prom]
//	         [-controllers 3 -kill-leader-at 200000 [-kill-leaders 1]]
//
// The default mode uses the fast flow-level evaluator (valid because the
// dataplane pins each flow to one middlebox chain). -packet-level runs
// the discrete-event simulator instead, on a proportionally reduced
// traffic volume, and also reports network-level statistics. With
// -metrics the packet-level run attaches the unified metrics registry
// (virtual-time clock) and writes the final Prometheus text exposition
// to the given file ("-" for stdout) — the same family names sdme-live
// serves over HTTP.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"sdme/internal/controller"
	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/metrics"
	"sdme/internal/netaddr"
	"sdme/internal/ospf"
	"sdme/internal/policy"
	"sdme/internal/sim"
	"sdme/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sdme-sim:", err)
		os.Exit(1)
	}
}

func parseStrategy(s string) (enforce.Strategy, error) {
	switch strings.ToLower(s) {
	case "hp", "hotpotato", "hot-potato":
		return enforce.HotPotato, nil
	case "rand", "random":
		return enforce.Random, nil
	case "lb", "loadbalanced", "load-balanced":
		return enforce.LoadBalanced, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want hp, rand or lb)", s)
	}
}

func run() error {
	topoName := flag.String("topology", "campus", "campus or waxman")
	stratName := flag.String("strategy", "lb", "hp, rand or lb")
	traffic := flag.Int("traffic", 1000000, "total packets to generate")
	policies := flag.Int("policies", 10, "policies per class")
	seed := flag.Int64("seed", 20, "deterministic seed")
	labels := flag.Bool("labels", false, "enable §III-E label switching (packet-level mode)")
	packetLevel := flag.Bool("packet-level", false, "run the discrete-event simulator")
	traceSpec := flag.String("trace", "", "trace one flow: srcSubnet:dstSubnet:dstPort (e.g. 1:2:80)")
	metricsOut := flag.String("metrics", "", "packet-level mode: write the final metrics exposition to this file (\"-\" = stdout)")
	killAt := flag.Int64("kill-at", 0, "packet-level mode: kill the first firewall middlebox at this virtual time (us) to exercise local fast failover (0: disabled)")
	journalPath := flag.String("journal", "", "packet-level mode: controller write-ahead journal, replayed on start if present (empty: disabled)")
	controllers := flag.Int("controllers", 1, "controller replicas; >1 runs the replicated-HA takeover scenario instead of a traffic experiment")
	killLeaderAt := flag.Int64("kill-leader-at", 0, "HA mode: virtual us after the first rollout at which the elected leader is killed (0: 10 lease windows)")
	killLeaders := flag.Int("kill-leaders", 1, "HA mode: how many consecutive leaders to assassinate")
	flag.Parse()

	if *controllers > 1 {
		return runHATakeover(*controllers, *killLeaders, *killLeaderAt, *seed)
	}
	if *killLeaderAt != 0 {
		return fmt.Errorf("-kill-leader-at requires -controllers > 1")
	}

	strategy, err := parseStrategy(*stratName)
	if err != nil {
		return err
	}
	bed, err := experiments.NewBed(experiments.Config{
		Topology: *topoName, Seed: *seed, PoliciesPerClass: *policies,
	})
	if err != nil {
		return err
	}
	stats := bed.Graph.Summarize()
	fmt.Printf("topology %s: %d nodes, %d links, %d middleboxes, %d proxies\n",
		*topoName, stats.Nodes, stats.Links, stats.Middleboxes, stats.Proxies)

	if *packetLevel {
		return runPacketLevel(bed, strategy, *traffic, *labels, *seed, *metricsOut, *killAt, *journalPath)
	}
	if *metricsOut != "" {
		return fmt.Errorf("-metrics requires -packet-level (the flow-level evaluator has no dataplane to observe)")
	}
	if *killAt != 0 || *journalPath != "" {
		return fmt.Errorf("-kill-at and -journal require -packet-level")
	}

	demands := bed.GenerateDemands(*traffic)
	report, sol, err := bed.RunStrategy(strategy, demands)
	if err != nil {
		return err
	}
	if *traceSpec != "" {
		if err := traceOne(bed, strategy, demands, *traceSpec); err != nil {
			return err
		}
	}
	fmt.Printf("strategy %v, %d flows, %d packets\n", strategy, len(demands), report.TotalPackets)
	if sol != nil {
		fmt.Printf("LB optimum λ = %.0f packets (LP: %d vars, %d constraints, %d pivots)\n",
			sol.Lambda, sol.Vars, sol.Constraints, sol.Iterations)
	}
	printLoads(bed, report)
	fmt.Printf("average policy-enforced path cost: %.2f hops/packet\n", report.AvgPathCost())
	return nil
}

// runHATakeover hosts N controller replicas on the virtual clock, kills
// the elected leader(s) mid-history, and prints the takeover trace — the
// replicated-HA scenario (DESIGN §11), deterministic per seed.
func runHATakeover(replicas, kills int, killLeaderAtUS, seed int64) error {
	res, err := experiments.RunSimHA(experiments.HAConfig{
		Seed:      seed,
		Replicas:  replicas,
		Kills:     kills,
		KillGapUS: killLeaderAtUS,
	})
	if err != nil {
		return err
	}
	fmt.Printf("controller HA: %d replicas, %d leader kill(s), seed %d\n", res.Replicas, res.Kills, res.Seed)
	fmt.Printf("first leader: replica %d at term %d\n", res.FirstLeader, res.FirstTerm)
	fmt.Printf("final leader: replica %d at term %d (worst takeover %dus)\n",
		res.FinalLeader, res.FinalTerm, res.TakeoverMaxUS)
	fmt.Printf("promotion trace: %s\n", res.Trace)
	fmt.Printf("epochs: %d before -> %d after (resumed past the fenced high-water: %v)\n",
		res.EpochBefore, res.EpochAfter, res.Resumed)
	fmt.Printf("journal records replayed by the final takeover: %d\n", res.Records)
	fmt.Printf("exported plan byte-identical across takeovers: %v\n", res.ExportIdentical)
	fmt.Printf("stale-term output from the dead leader refused: %v\n", res.StaleRejected)
	avail := 1.0
	if res.PushAttempts > 0 {
		avail = 1 - float64(res.PushFailures)/float64(res.PushAttempts)
	}
	fmt.Printf("plan-push availability: %.1f%% (%d of %d probe pushes failed during takeovers)\n",
		100*avail, res.PushFailures, res.PushAttempts)
	if !res.ExportIdentical || !res.StaleRejected || !res.Resumed {
		return fmt.Errorf("HA takeover degraded (see above)")
	}
	return nil
}

// traceOne resolves a "src:dst:port" spec and prints the flow's exact
// enforcement path under the given strategy (with LB weights solved for
// the same demand set, so the answer matches the evaluation above).
func traceOne(bed *experiments.Bed, strategy enforce.Strategy, demands []enforce.FlowDemand, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad -trace %q, want src:dst:port", spec)
	}
	src, err1 := strconv.Atoi(parts[0])
	dst, err2 := strconv.Atoi(parts[1])
	port, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf("bad -trace %q", spec)
	}
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
		Strategy: strategy, K: bed.Cfg.K,
	})
	nodes, err := ctl.BuildNodes()
	if err != nil {
		return err
	}
	if strategy == enforce.LoadBalanced {
		sol, err := ctl.SolveLB(controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands))
		if err != nil {
			return err
		}
		controller.ApplyWeights(nodes, sol)
	}
	ft := netaddr.FiveTuple{
		Src: topo.HostAddr(src, 1), Dst: topo.HostAddr(dst, 1),
		SrcPort: 33333, DstPort: uint16(port), Proto: netaddr.ProtoTCP,
	}
	tr, err := enforce.TraceFlow(nodes, bed.Dep, bed.AllPairs, ft)
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace: %s\n", tr)
	for _, h := range tr.Hops {
		names := make([]string, len(h.Candidates))
		for i, c := range h.Candidates {
			names[i] = bed.Graph.Node(c).Name
		}
		fmt.Printf("  %-4s -> %-6s (+%.0f hops) chosen from %v\n",
			h.Func, bed.Graph.Node(h.Node).Name, h.Cost, names)
	}
	return nil
}

func printLoads(bed *experiments.Bed, report *enforce.LoadReport) {
	for _, f := range experiments.Funcs {
		providers := topo.SortedIDs(bed.Dep.Providers(f))
		if len(providers) == 0 {
			continue
		}
		fmt.Printf("\n%s middleboxes:\n", f)
		loads := report.LoadsOf(bed.Dep, f)
		for i, id := range providers {
			bar := strings.Repeat("#", int(60*loads[i]/(1+report.MaxLoad(bed.Dep, f))))
			fmt.Printf("  %-8s %9d %s\n", bed.Graph.Node(id).Name, loads[i], bar)
		}
	}
}

func runPacketLevel(bed *experiments.Bed, strategy enforce.Strategy, traffic int, labels bool, seed int64, metricsOut string, killAt int64, journalPath string) error {
	// Packet-level simulation is detailed; cap the injected volume.
	const maxPackets = 200000
	if traffic > maxPackets {
		fmt.Printf("packet-level mode: reducing traffic %d -> %d packets\n", traffic, maxPackets)
		traffic = maxPackets
	}
	ctl := controller.New(bed.Dep, bed.AllPairs, bed.Table, controller.Options{
		Strategy: strategy, K: bed.Cfg.K,
		LabelSwitching: labels, HashSeed: uint64(seed),
	})
	if journalPath != "" {
		if _, err := os.Stat(journalPath); err == nil {
			st, err := controller.ReplayJournal(journalPath)
			if err != nil {
				return err
			}
			if st.Records > 0 {
				if err := ctl.RestoreFromJournal(st); err != nil {
					return err
				}
				fmt.Printf("journal: replayed %d records (epoch %d, %d failed middleboxes, torn tail: %v)\n",
					st.Records, st.Epoch, len(st.Failed), st.Torn)
			}
		}
		jrnl, err := controller.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		defer jrnl.Close()
		if err := ctl.SetJournal(jrnl); err != nil {
			return err
		}
	}
	nodes, err := ctl.BuildNodes()
	if err != nil {
		return err
	}
	dom := ospf.NewDomain(bed.Graph)
	fstats := dom.Converge()
	fmt.Printf("OSPF converged: %d flooding rounds, %d LSA messages\n", fstats.Rounds, fstats.Messages)

	nw := sim.New(bed.Graph, dom, bed.Dep, nodes)
	var reg *metrics.Registry
	if metricsOut != "" {
		reg = nw.NewRegistry()
		nw.AttachMetrics(reg)
		ctl.SetMetrics(reg, nw.Engine.Now)
	}
	if strategy == enforce.LoadBalanced {
		demands := bed.GenerateDemands(traffic)
		meas := controller.MeasurementsFromFlows(bed.Dep, bed.Table, demands)
		sol, err := ctl.SolveLB(meas)
		if err != nil {
			return err
		}
		controller.ApplyWeights(nodes, sol)
	}
	// Local fast failover demo: at the requested virtual time the first
	// firewall dies. No controller reaction is scheduled — recovery must
	// come entirely from the pre-installed backup candidate lists.
	var victim topo.NodeID
	if killAt > 0 {
		fws := topo.SortedIDs(bed.Dep.Providers(policy.FuncFW))
		if len(fws) < 2 {
			return fmt.Errorf("-kill-at needs at least 2 FW middleboxes, have %d", len(fws))
		}
		victim = fws[0]
		nw.Engine.After(killAt, func() { nw.SetNodeDown(victim, true) })
		fmt.Printf("failover: %s dies at t=%dus (no controller involvement)\n",
			bed.Graph.Node(victim).Name, killAt)
	}

	demands := bed.GenerateDemands(traffic)
	at := int64(0)
	for _, d := range demands {
		if err := nw.InjectFlow(d.Tuple, int(d.Packets), 512, at, 200); err != nil {
			return err
		}
		at += 13
	}
	nw.Run(0)
	s := nw.Stats()
	fmt.Printf("\nsimulation: injected=%d delivered=%d served=%d dropped(policy)=%d hops=%d\n",
		s.PacketsInjected, s.Delivered, s.ServedLocally, s.DroppedPolicy, s.PacketHops)
	fmt.Printf("fragments=%d reassemblies=%d control=%d errors=%d\n",
		s.FragmentsCreated, s.Reassemblies, s.ControlMessages, s.EnforcementErrors)
	if killAt > 0 {
		var failovers, invalidated int64
		for _, n := range nodes {
			failovers += n.Counters.Failovers
			invalidated += n.Counters.Invalidated
		}
		fmt.Printf("failover: %d selections diverted to backups, %d soft-state entries purged after %s died\n",
			failovers, invalidated, bed.Graph.Node(victim).Name)
	}

	loads := nw.MiddleboxLoads()
	ids := make([]topo.NodeID, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("\nmiddlebox loads:")
	for _, id := range ids {
		fmt.Printf("  %-8s %9d\n", bed.Graph.Node(id).Name, loads[id])
	}

	if reg != nil {
		snap := reg.Snapshot()
		if metricsOut == "-" {
			fmt.Printf("\n%s", snap.Text)
		} else if err := os.WriteFile(metricsOut, snap.Text, 0o644); err != nil {
			return err
		} else {
			fmt.Printf("\nmetrics exposition (virtual time %dus) written to %s\n", snap.AtUS, metricsOut)
		}
	}
	return nil
}
