// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV), plus the extension ablations indexed in DESIGN.md.
// Each benchmark rebuilds the experiment from scratch per iteration (one
// iteration is the full experiment; reported metrics carry the headline
// numbers). cmd/sdme-bench produces the same data as CSV/markdown files.
package sdme_test

import (
	"testing"

	"sdme/internal/enforce"
	"sdme/internal/experiments"
	"sdme/internal/policy"
)

// figureTraffic is the paper's x-axis: 1M..10M total packets.
func figureTraffic() []int {
	var out []int
	for m := 1; m <= 10; m++ {
		out = append(out, m*1000000)
	}
	return out
}

// reportFigure attaches the 10M-packet endpoint loads as metrics and logs
// the full series.
func reportFigure(b *testing.B, res *experiments.FigureResult) {
	b.Helper()
	last := res.Points[len(res.Points)-1]
	for _, f := range experiments.Funcs {
		for _, s := range experiments.Strategies {
			b.ReportMetric(float64(last.MaxLoad[f][s]), f.String()+"_"+s.String()+"_max@10M")
		}
	}
	b.Logf("figure series (%s):\n%s", res.Topology, experiments.FigureMarkdown(res))
}

// BenchmarkFig4MaxLoadCampus regenerates Figure 4: max load on each
// middlebox type vs total traffic (1M–10M packets) on the campus
// topology, under HP / Rand / LB.
func BenchmarkFig4MaxLoadCampus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMaxLoadFigure(experiments.Config{
			Topology: "campus", Seed: 20, TrafficPoints: figureTraffic(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, res)
		}
	}
}

// BenchmarkFig5MaxLoadWaxman regenerates Figure 5: the same sweep on the
// 400-edge/25-core Waxman topology.
func BenchmarkFig5MaxLoadWaxman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMaxLoadFigure(experiments.Config{
			Topology: "waxman", Seed: 20, TrafficPoints: figureTraffic(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, res)
		}
	}
}

// BenchmarkTable3LoadDistribution regenerates Table III: max and min
// loads per middlebox type on the campus topology at the 10M-packet
// operating point.
func BenchmarkTable3LoadDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunLoadDistributionTable(experiments.Config{
			Topology: "campus", Seed: 20,
		}, 10000000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				kind := "min"
				if r.IsMax {
					kind = "max"
				}
				for _, s := range experiments.Strategies {
					b.ReportMetric(float64(r.ByStrat[s]), r.Func.String()+"_"+kind+"_"+s.String())
				}
			}
			b.Logf("Table III:\n%s", experiments.TableMarkdown(rows))
		}
	}
}

// BenchmarkAblationCandidateSetSize sweeps k (|M_x^e|): the balance vs
// locality trade-off behind the paper's k=4/4/2/2 choice (k=1 degenerates
// to hot-potato).
func BenchmarkAblationCandidateSetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunCandidateKAblation(experiments.Config{
			Topology: "campus", Seed: 20,
		}, 2000000, []int{1, 2, 4, 7})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range points {
				b.ReportMetric(p.Lambda, "lambda@k="+string(rune('0'+p.K)))
			}
			b.Logf("candidate-set ablation:\n%s", experiments.KAblationMarkdown(points))
		}
	}
}

// BenchmarkAblationFlowTableAndLabels runs the packet-level simulator
// with MTU-sized packets, with and without §III-E label switching, and
// reports classification work, encapsulation overhead and fragmentation.
func BenchmarkAblationFlowTableAndLabels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off, err := experiments.RunStateAblation(20, 150, 6, 1480, false)
		if err != nil {
			b.Fatal(err)
		}
		on, err := experiments.RunStateAblation(20, 150, 6, 1480, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(off.FragmentsCreated), "fragments_tunnel")
			b.ReportMetric(float64(on.FragmentsCreated), "fragments_labels")
			b.ReportMetric(float64(off.EncapOverheadBytes), "encap_bytes_tunnel")
			b.ReportMetric(float64(on.EncapOverheadBytes), "encap_bytes_labels")
			b.Logf("state ablation:\n%s", experiments.StateAblationMarkdown(off, on))
		}
	}
}

// BenchmarkAblationEq1VsEq2 compares the paper's two LP formulations on a
// reduced instance: optimum, size and simplex effort.
func BenchmarkAblationEq1VsEq2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunEq1VsEq2(experiments.Config{
			Topology: "campus", Seed: 20, PoliciesPerClass: 3,
		}, 500000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(cmp.AggVars), "eq2_vars")
			b.ReportMetric(float64(cmp.FineVars), "eq1_vars")
			b.ReportMetric(cmp.AggLambda, "eq2_lambda")
			b.ReportMetric(cmp.FineLambda, "eq1_lambda")
			b.Logf("formulations:\n%s", experiments.FormulationMarkdown(cmp))
		}
	}
}

// BenchmarkEvaluator10M measures the flow-level evaluator's throughput at
// the paper's largest operating point (engineering metric, not a paper
// figure).
func BenchmarkEvaluator10M(b *testing.B) {
	bed, err := experiments.NewBed(experiments.Config{Topology: "campus", Seed: 20})
	if err != nil {
		b.Fatal(err)
	}
	demands := bed.GenerateDemands(10000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, _, err := bed.RunStrategy(enforce.HotPotato, demands)
		if err != nil {
			b.Fatal(err)
		}
		if report.MaxLoad(bed.Dep, policy.FuncIDS) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkAblationPathStretch reports the routing detour each strategy
// pays relative to unenforced shortest paths (extension; the paper does
// not evaluate latency).
func BenchmarkAblationPathStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, points, err := experiments.RunPathStretch(experiments.Config{
			Topology: "campus", Seed: 20,
		}, 2000000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(base, "baseline_hops")
			for _, p := range points {
				b.ReportMetric(p.Stretch, "stretch_"+p.Strategy.String())
			}
			b.Logf("path stretch:\n%s", experiments.StretchMarkdown(base, points))
		}
	}
}

// BenchmarkAblationQueueing gives every middlebox a finite service rate
// and measures end-to-end latency per strategy — the latency meaning of
// min-max λ (extension).
func BenchmarkAblationQueueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunQueueingAblation(20, 120, 40, 9000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range points {
				b.ReportMetric(p.AvgLatencyUS, "avg_latency_us_"+p.Strategy.String())
			}
			b.Logf("queueing under finite capacity:\n%s", experiments.QueueingMarkdown(points))
		}
	}
}

// BenchmarkAblationTrafficDrift compares §III-C periodic rebalancing
// against frozen epoch-0 weights under a rotating traffic surge
// (extension).
func BenchmarkAblationTrafficDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunDriftExperiment(experiments.Config{
			Topology: "campus", Seed: 20,
		}, 1000000, 6)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var stale, rebal int64
			for _, r := range rows[1:] {
				stale += r.MaxStale
				rebal += r.MaxRebalanced
			}
			b.ReportMetric(float64(stale)/float64(len(rows)-1), "avg_max_stale")
			b.ReportMetric(float64(rebal)/float64(len(rows)-1), "avg_max_rebalanced")
			b.Logf("traffic drift:\n%s", experiments.DriftMarkdown(rows))
		}
	}
}
