package sdme_test

import (
	"fmt"
	"log"

	"sdme"
)

// Example_quickstart shows the full lifecycle: build the paper's campus
// network, declare a policy, deploy load-balanced enforcement, optimize
// against measured demand, and inspect a flow's path.
func Example_quickstart() {
	sys, err := sdme.NewCampus(1)
	if err != nil {
		log.Fatal(err)
	}
	sys.MustAddPolicy("*", "10.2.0.0/16", "*", "80", "FW,IDS")
	if err := sys.Deploy(sdme.LoadBalanced); err != nil {
		log.Fatal(err)
	}

	flow := sdme.Flow(sdme.HostAddr(3, 1), sdme.HostAddr(2, 1), 40000, 80)
	demands := []sdme.FlowDemand{{Tuple: flow, Packets: 1000}}
	if _, err := sys.Balance(demands); err != nil {
		log.Fatal(err)
	}
	tr, err := sys.Trace(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain length: %d\n", len(tr.Hops))
	fmt.Printf("first function: %v\n", tr.Hops[0].Func)
	fmt.Printf("violations: %d\n", len(sys.Verify()))
	// Output:
	// chain length: 2
	// first function: FW
	// violations: 0
}

// Example_policyLint shows the first-match analyzer catching a dead
// policy before deployment.
func Example_policyLint() {
	sys, err := sdme.NewCampus(2)
	if err != nil {
		log.Fatal(err)
	}
	sys.MustAddPolicy("*", "*", "*", "*", "FW")             // matches everything
	sys.MustAddPolicy("10.1.0.0/16", "*", "*", "80", "IDS") // can never match
	for _, finding := range sys.LintPolicies() {
		fmt.Println(finding)
	}
	// Output:
	// shadowed: policy#1[10.1.0.0/16:* -> *:80 proto=any: IDS] shadowed by policy#0[*:* -> *:* proto=any: FW]
}
